"""The BIST service: routes, workers, drain — BIST-as-a-service.

One :class:`BistService` owns the whole runtime: an HTTP front end
(:mod:`repro.serve.http`), a quota-aware :class:`~repro.serve.jobs.
JobQueue`, N worker tasks driving :func:`repro.engine.simulate` in a
thread pool, and a :class:`~repro.serve.cache.ResultCache` keyed by the
checkpoint run key.  The service is a thin orchestration shell by design:
simulation semantics, governance, journaling and serialization all come
from the existing layers (``engine`` / ``guard`` / ``checkpoint`` /
``cli_args``), so a job run through the service is the same run a library
caller or the CLI would get.

Drain contract (exercised by ``tests/test_serve_drain.py``): SIGTERM (or
:meth:`BistService.begin_drain`) trips one shared
:class:`~repro.guard.CancelToken`.  New submissions are refused with 503;
queued jobs are marked cancelled; running engine calls stop at their next
shard-round boundary, flush their checkpoint journal, and complete with
``partial=True`` results.  The HTTP endpoint stays up for a grace window
so clients can collect those partial results, then the process exits with
the conventional signal code (143 for SIGTERM) via
:func:`repro.guard.exit_code`.  Because jobs journal under
``<state dir>/journal`` with ``resume=True``, a restarted service resumes
an interrupted job's resubmission bit-identically.
"""

from __future__ import annotations

import asyncio
import functools
import signal
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import telemetry
from repro.cli_args import result_payload
from repro.engine.checkpoint import CheckpointStore, resolve_run_key
from repro.errors import LintError, ReproError
from repro.exec.base import ExecutorStartError
from repro.guard import (
    STOP_SIGINT,
    STOP_SIGTERM,
    Budget,
    CancelToken,
    exit_code,
    guard_summary,
)
from repro.serve.cache import DEFAULT_CACHE_SIZE, ResultCache
from repro.serve.http import (
    Request,
    Response,
    bound_port,
    json_response,
    start_http_server,
    text_response,
)
from repro.serve.jobs import (
    DEFAULT_MAX_QUEUED,
    DEFAULT_TENANT_QUOTA,
    STATE_DONE,
    Job,
    JobQueue,
)
from repro.serve.protocol import ApiError, JobRequest

#: Seconds the HTTP endpoint stays up after the last job drains, so
#: clients can still collect partial results and final status.
DEFAULT_DRAIN_GRACE = 2.0

#: Worker tasks (each drives one blocking engine run at a time).
DEFAULT_WORKERS = 2

#: ``retry_after`` hint (seconds) on the 503 a job gets when its execution
#: backend cannot start — long enough for an operator to restart peers.
EXECUTOR_RETRY_AFTER_SECONDS = 30


def _design_builders() -> Dict[str, Callable[[], Any]]:
    from repro.library import scenarios

    return {
        "c3a2m": scenarios.c3a2m_kernel,
        "mac4": scenarios.mac4_kernel,
        "figure4": scenarios.figure4_kernel,
        "figure9": scenarios.figure9_kernel,
        "synth20k": scenarios.synth20k_kernel,
    }


class DesignRegistry:
    """Library designs the API accepts by name, built and collapsed once.

    Builders are deterministic, so memoizing the netlist *and* its
    collapsed fault universe makes repeat submissions of the same design
    pay construction cost once per process.  Thread-safe because
    preparation runs in the submit thread pool.
    """

    def __init__(self) -> None:
        self._builders = _design_builders()
        self._built: Dict[str, Tuple[Any, List[Any]]] = {}
        self._lock = threading.Lock()

    def names(self) -> List[str]:
        return sorted(self._builders)

    def resolve(self, name: str) -> Tuple[Any, List[Any]]:
        """``(netlist, collapsed faults)`` for a design name, or 404."""
        if name not in self._builders:
            raise ApiError(
                404, "unknown-design",
                f"unknown design {name!r}",
                extra={"available": self.names()},
            )
        with self._lock:
            if name not in self._built:
                from repro.faultsim.collapse import collapse_faults

                netlist = self._builders[name]()
                faults, _ = collapse_faults(netlist)
                self._built[name] = (netlist, faults)
            return self._built[name]


class BistService:
    """The service runtime: routes, queue, workers, cache, drain."""

    def __init__(
        self,
        state_dir: Any,
        *,
        workers: int = DEFAULT_WORKERS,
        tenant_quota: int = DEFAULT_TENANT_QUOTA,
        max_queued: int = DEFAULT_MAX_QUEUED,
        cache_size: int = DEFAULT_CACHE_SIZE,
        drain_grace: float = DEFAULT_DRAIN_GRACE,
        max_journal_entries: Optional[int] = None,
    ):
        self.state_dir = Path(state_dir)
        self.journal_root = self.state_dir / "journal"
        self.journal_root.mkdir(parents=True, exist_ok=True)
        self.n_workers = max(1, workers)
        self.drain_grace = max(0.0, drain_grace)
        self.max_journal_entries = max_journal_entries
        self.designs = DesignRegistry()
        self._profiles: Dict[str, Any] = {}
        self._profile_lock = threading.Lock()
        self.cache = ResultCache(cache_size)
        self.queue = JobQueue(tenant_quota=tenant_quota,
                              max_queued=max_queued)
        self.jobs: Dict[str, Job] = {}
        self.cancel = CancelToken()
        self.draining = False
        self.port: Optional[int] = None
        self.started_at = time.time()
        self._job_counter = 0
        self._drain_event: Optional[asyncio.Event] = None

    # ------------------------------------------------------------ lifecycle

    def begin_drain(self, reason: str = STOP_SIGTERM,
                    signum: Optional[int] = None) -> None:
        """Start the drain (idempotent; callable from a signal handler)."""
        if self.draining:
            return
        self.draining = True
        self.cancel.trip(reason, signum=signum)
        telemetry.count("serve.drain")
        if self._drain_event is not None:
            self._drain_event.set()

    async def run(self, host: str, port: int,
                  announce: Optional[Callable[[str], None]] = None,
                  install_signals: bool = True,
                  ready: Optional[threading.Event] = None) -> int:
        """Serve until drained; returns the process exit code (0/130/143)."""
        loop = asyncio.get_running_loop()
        self._drain_event = asyncio.Event()
        if self.cancel.cancelled:  # drained before the loop even started
            self._drain_event.set()
        server = await start_http_server(host, port, self.handle)
        self.port = bound_port(server)
        if install_signals:
            try:
                loop.add_signal_handler(
                    signal.SIGTERM,
                    functools.partial(self.begin_drain, STOP_SIGTERM,
                                      signal.SIGTERM))
                loop.add_signal_handler(
                    signal.SIGINT,
                    functools.partial(self.begin_drain, STOP_SIGINT,
                                      signal.SIGINT))
            except (NotImplementedError, RuntimeError):
                # Non-main thread (or an exotic loop): the token still
                # works when tripped in code via begin_drain().
                pass
        workers = [asyncio.ensure_future(self._worker_loop())
                   for _ in range(self.n_workers)]
        if announce is not None:
            announce(f"serving on http://{host}:{self.port}")
        if ready is not None:
            ready.set()
        await self._drain_event.wait()
        if announce is not None:
            announce(f"draining: {self.cancel.reason}")
        await self.queue.close()
        await asyncio.gather(*workers)
        # In-flight work has stopped; keep answering status/result queries
        # for the grace window so clients can collect partial results.
        await asyncio.sleep(self.drain_grace)
        server.close()
        await server.wait_closed()
        if announce is not None:
            announce("drained")
        return exit_code(self.cancel)

    # -------------------------------------------------------------- workers

    async def _worker_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = await self.queue.acquire()
            if job is None:
                return
            try:
                payload = await loop.run_in_executor(
                    None, self._execute, job)
                job.result = payload
                job.state = STATE_DONE
                job.finished_at = time.time()
                self.cache.put(job.run_key, payload)
                self._sweep_journal()
                telemetry.count("serve.jobs_completed")
            except ApiError as error:
                job.fail(error)
                telemetry.count("serve.jobs_failed")
            except ExecutorStartError as error:
                # The execution substrate never came up (e.g. the remote
                # backend found no reachable peer): the job itself is
                # fine, the infrastructure is not — a retryable 503 with a
                # hint, not a generic 500.  Ordered before ReproError,
                # which this error subclasses.
                job.fail(ApiError(
                    503, "executor-unavailable", str(error),
                    extra={"retry_after": EXECUTOR_RETRY_AFTER_SECONDS},
                ))
                telemetry.count("serve.jobs_failed")
            except ReproError as error:
                job.fail(ApiError(500, "simulation", str(error)))
                telemetry.count("serve.jobs_failed")
            except Exception as error:  # noqa: BLE001 - worker boundary
                job.fail(ApiError(
                    500, "internal", f"{type(error).__name__}: {error}"))
                telemetry.count("serve.jobs_failed")
            finally:
                await self.queue.release(job)

    def _sweep_journal(self) -> None:
        """Bound the on-disk journal to the newest run-key entries (LRU).

        Off by default (``max_journal_entries=None``): the journal then
        grows one ``<run key>`` directory per distinct submission, which
        a long-lived service on a small state volume cannot afford.  With
        a limit set, completed entries beyond it are removed oldest-first
        by mtime; entries belonging to unfinished jobs are never touched
        (a running engine is writing there, and a queued resubmission
        still wants the resume replay).  Evicting a *completed* entry
        only costs a re-run on resubmission after the result cache has
        also dropped the key — the durability/space trade the operator
        opted into.
        """
        limit = self.max_journal_entries
        if limit is None:
            return
        import shutil

        protected = {
            job.run_key[:32] for job in self.jobs.values()
            if job.run_key is not None and not job.finished
        }
        try:
            entries = [path for path in self.journal_root.iterdir()
                       if path.is_dir() and path.name not in protected]
        except OSError:  # pragma: no cover - state dir vanished underfoot
            return

        def mtime(path: Path) -> float:
            try:
                return path.stat().st_mtime
            except OSError:  # pragma: no cover - concurrent removal
                return 0.0

        entries.sort(key=mtime)
        for stale in entries[: max(0, len(entries) - max(0, limit))]:
            shutil.rmtree(stale, ignore_errors=True)
            telemetry.count("serve.journal_evictions")

    def _execute(self, job: Job) -> Dict[str, Any]:
        """Run one job's engine call (thread pool; blocking is fine here)."""
        from repro.engine import simulate

        netlist, faults, source, config, budget = job.work
        with telemetry.span("serve.job", job=job.id,
                            target=job.request.target):
            result = simulate(netlist, faults, source, config=config)
        return result_payload(
            result,
            context={
                "circuit": job.request.target,
                "seed": job.request.seed,
                "run_key": job.run_key,
            },
            guard=guard_summary(
                budget, self.cancel,
                stop_reason=result.stop_reason,
                partial=result.partial,
            ),
            include_faults=True,
        )

    # ------------------------------------------------------------ submission

    def _prepare(self, request: JobRequest):
        """Resolve a submission to runnable work (thread pool).

        Returns ``(work tuple, run key)``; raises :class:`ApiError` for
        anything the client got wrong — 404 unknown design, 400 unparsable
        bench text, 422 lint findings.
        """
        if request.design is not None:
            netlist, faults = self.designs.resolve(request.design)
        else:
            from repro.faultsim.collapse import collapse_faults
            from repro.netlist import bench_io

            try:
                # validate=False: structurally broken uploads (cycles,
                # floating outputs) must reach the lint pre-flight, whose
                # Finding documents are the 422 contract — not die in the
                # parser's first structural check with an opaque 400.
                netlist = bench_io.loads(str(request.bench),
                                         name=request.target,
                                         validate=False)
            except ReproError as error:
                raise ApiError(400, "bad-netlist",
                               f"bench text did not parse: {error}") \
                    from error
            from repro.lint.runner import preflight_netlist

            # Pre-flight *before* fault collapse: a 422 must carry the
            # lint findings, not whatever collapse trips over first.
            preflight_netlist(netlist, name=request.target)
            faults, _ = collapse_faults(netlist)
        from repro.faultsim.patterns import RandomPatternSource

        source = RandomPatternSource(len(netlist.primary_inputs),
                                     seed=request.seed)
        budget = (Budget(deadline=request.deadline).arm()
                  if request.deadline is not None else None)
        config = request.run_config(self.journal_root, budget, self.cancel)
        key = resolve_run_key(netlist, source, faults, config)
        return (netlist, faults, source, config, budget), key

    async def _submit(self, request: Request) -> Response:
        if self.draining:
            raise ApiError(503, "draining",
                           "service is draining; not accepting new jobs")
        job_request = JobRequest.from_json(request.json())
        loop = asyncio.get_running_loop()
        work, key = await loop.run_in_executor(
            None, self._prepare, job_request)
        self._job_counter += 1
        job = Job(f"job-{self._job_counter:05d}", job_request, key)
        self.jobs[job.id] = job
        cached = self.cache.get(key)
        if cached is not None:
            job.cached = True
            job.state = STATE_DONE
            job.started_at = job.submitted_at
            job.finished_at = time.time()
            job.result = cached
            telemetry.count("serve.jobs_completed")
        else:
            job.work = work
            self.queue.submit(job)
        telemetry.count("serve.jobs_submitted")
        return json_response(202, job.status_json())

    # --------------------------------------------------------------- queries

    def _get_job(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise ApiError(404, "unknown-job", f"no such job: {job_id}")
        return job

    def _progress(self, job: Job) -> List[Dict[str, Any]]:
        """The coverage curve so far, read from the checkpoint journal.

        One point per completed engine round: patterns applied through
        that round and cumulative detections across all shards.  Empty
        for cached jobs (nothing ran) and before the first round lands.
        """
        if job.run_key is None or job.cached:
            return []
        store = CheckpointStore(self.journal_root, job.run_key)
        # sweep=False: this is a concurrent *read* of a journal the engine
        # may be writing right now; the stale-tmp sweep would race the
        # writer's atomic rename.
        records = store.load(sweep=False)
        if not records:
            return []
        rounds: Dict[int, Dict[str, int]] = {}
        for (_, round_index), record in records.items():
            point = rounds.setdefault(round_index,
                                      {"patterns": 0, "detected": 0})
            point["patterns"] = max(point["patterns"],
                                    int(record["patterns"]))
            point["detected"] += len(record["detections"])
        curve: List[Dict[str, Any]] = []
        detected = 0
        for round_index in sorted(rounds):
            point = rounds[round_index]
            detected += point["detected"]
            curve.append({
                "round": round_index,
                "patterns": point["patterns"],
                "detected": detected,
            })
        return curve

    async def _job_status(self, job_id: str) -> Response:
        job = self._get_job(job_id)
        payload = job.status_json()
        payload["progress"] = self._progress(job)
        return json_response(200, payload)

    async def _job_result(self, job_id: str,
                          query: Dict[str, str]) -> Response:
        job = self._get_job(job_id)
        if job.state == STATE_DONE and job.result is not None:
            payload = job.result
            include_faults = query.get("include_faults", "") \
                not in ("", "0", "false")
            if not (job.request.include_faults or include_faults):
                payload = {name: value for name, value in payload.items()
                           if name not in ("first_detection", "undetected")}
            return json_response(200, payload)
        if job.finished:  # failed or cancelled: replay the stored error
            return json_response(job.error_status,
                                 job.error or {"error": "unknown"})
        raise ApiError(409, "pending",
                       f"job {job_id} is {job.state}; result not ready",
                       extra={"state": job.state})

    def _testability_payload(self, name: str,
                             patterns: int) -> Dict[str, Any]:
        """The static testability document for one library design.

        The window-free :class:`~repro.analysis.random_testability.
        TestabilityProfile` is memoized per design (same pattern as the
        run-key result cache: deterministic input, pay the analysis once
        per process); every windowed question in the response is answered
        at query time, so ``?patterns=`` changes the document without
        invalidating the memo.
        """
        from repro.analysis import DEFAULT_WINDOW, analyze_netlist

        netlist, faults = self.designs.resolve(name)
        with self._profile_lock:
            profile = self._profiles.get(name)
            if profile is None:
                telemetry.count("analysis.cache_miss")
                profile = analyze_netlist(netlist, faults)
                self._profiles[name] = profile
            else:
                telemetry.count("analysis.cache_hit")
        window = patterns if patterns > 0 else DEFAULT_WINDOW
        payload = profile.to_json(window=window)
        payload["design"] = name
        return payload

    async def _design_testability(self, name: str,
                                  query: Dict[str, str]) -> Response:
        try:
            patterns = int(query.get("patterns", "0") or "0")
        except ValueError as error:
            raise ApiError(400, "bad-query",
                           "patterns must be an integer") from error
        loop = asyncio.get_running_loop()
        payload = await loop.run_in_executor(
            None, self._testability_payload, name, patterns)
        return json_response(200, payload)

    async def _health(self) -> Response:
        status = 503 if self.draining else 200
        return json_response(status, {
            "status": "draining" if self.draining else "ok",
            "jobs": len(self.jobs),
            "queued": len(self.queue),
            "running": self.queue.n_running,
            "cache": self.cache.stats(),
            "uptime": time.time() - self.started_at,
        })

    # --------------------------------------------------------------- routing

    async def handle(self, request: Request) -> Response:
        try:
            return await self._route(request)
        except LintError as error:
            # The typed lint-failure contract: HTTP 422 carrying the full
            # Finding list — the same document `repro-bist selftest --json`
            # prints for the same netlist (LintError.payload()).
            telemetry.count("serve.lint_rejections")
            return json_response(422, error.payload())

    async def _route(self, request: Request) -> Response:
        route = (request.method, request.path)
        if request.path == "/healthz":
            self._expect(request, "GET")
            return await self._health()
        if request.path == "/metrics":
            self._expect(request, "GET")
            from repro.telemetry.export import metrics_text

            return text_response(
                200, metrics_text(),
                content_type="text/plain; version=0.0.4; charset=utf-8")
        if request.path == "/v1/jobs":
            if request.method == "POST":
                return await self._submit(request)
            self._expect(request, "GET")
            return json_response(200, {
                "jobs": [job.status_json()
                         for job in self.jobs.values()],
            })
        if request.path.startswith("/v1/jobs/"):
            rest = request.path[len("/v1/jobs/"):]
            if rest.endswith("/result"):
                self._expect(request, "GET")
                return await self._job_result(rest[:-len("/result")],
                                              request.query)
            if "/" not in rest:
                self._expect(request, "GET")
                return await self._job_status(rest)
        if request.path.startswith("/v1/designs/") and \
                request.path.endswith("/testability"):
            self._expect(request, "GET")
            name = request.path[len("/v1/designs/"):-len("/testability")]
            return await self._design_testability(name, request.query)
        raise ApiError(404, "not-found",
                       f"no route for {route[0]} {route[1]}")

    @staticmethod
    def _expect(request: Request, method: str) -> None:
        if request.method != method:
            raise ApiError(405, "method-not-allowed",
                           f"{request.path} only supports {method}")


# ----------------------------------------------------------------- embedding

class ServerThread:
    """An in-process service on a background thread (tests, benchmarks).

    ``start()`` returns once the port is bound; ``drain()`` requests the
    same shutdown SIGTERM would; ``join()`` collects the exit code.
    """

    def __init__(self, service: BistService,
                 host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.host = host
        self._requested_port = port
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.exit_code: Optional[int] = None
        self._thread = threading.Thread(target=self._run,
                                        name="repro-serve", daemon=True)

    @property
    def port(self) -> int:
        port = self.service.port
        if port is None:
            raise RuntimeError("server not started")
        return port

    def start(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server failed to start within 30s")
        return self

    def _run(self) -> None:
        async def _amain() -> int:
            self._loop = asyncio.get_running_loop()
            return await self.service.run(
                self.host, self._requested_port,
                install_signals=False, ready=self._ready)

        try:
            self.exit_code = asyncio.run(_amain())
        finally:
            self._ready.set()  # unblock start() even on a crashed loop

    def drain(self) -> None:
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self.service.begin_drain)
        else:
            self.service.begin_drain()

    def join(self, timeout: float = 30) -> Optional[int]:
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError("server thread did not exit")
        return self.exit_code

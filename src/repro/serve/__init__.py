"""repro.serve — BIST-as-a-service over the existing engine stack.

A zero-heavy-dependency asyncio HTTP/JSON service exposing the fault-
simulation engine as a job API:

* ``POST /v1/jobs`` — submit a library design name or an uploaded
  ``.bench`` netlist plus :class:`~repro.exec.RunConfig`-shaped options.
* ``GET /v1/jobs/{id}`` — job status plus a streaming coverage curve read
  from the run's checkpoint journal.
* ``GET /v1/jobs/{id}/result`` — the full result document, byte-identical
  in shape to ``repro-bist selftest --json``.
* ``GET /metrics`` — the process telemetry registry in Prometheus text
  format (the exact bytes ``--metrics-out`` would write).
* ``GET /healthz`` — liveness plus queue/cache occupancy.

Results are cached content-addressed by the checkpoint run key, so an
identical resubmission is served without simulating; deadlines map onto
:class:`~repro.guard.Budget` and SIGTERM drains gracefully through the
shared :class:`~repro.guard.CancelToken`.  Start it with ``repro-bist
serve`` — see ``docs/SERVE.md`` for the full API reference.
"""

from repro.serve.app import (
    DEFAULT_DRAIN_GRACE,
    DEFAULT_WORKERS,
    BistService,
    DesignRegistry,
    ServerThread,
)
from repro.serve.cache import DEFAULT_CACHE_SIZE, ResultCache
from repro.serve.jobs import (
    DEFAULT_MAX_QUEUED,
    DEFAULT_TENANT_QUOTA,
    STATE_CANCELLED,
    STATE_DONE,
    STATE_FAILED,
    STATE_QUEUED,
    STATE_RUNNING,
    Job,
    JobQueue,
)
from repro.serve.protocol import (
    DEFAULT_JOB_PATTERNS,
    MAX_JOB_PATTERNS,
    ApiError,
    JobRequest,
)

__all__ = [
    "ApiError",
    "BistService",
    "DEFAULT_CACHE_SIZE",
    "DEFAULT_DRAIN_GRACE",
    "DEFAULT_JOB_PATTERNS",
    "DEFAULT_MAX_QUEUED",
    "DEFAULT_TENANT_QUOTA",
    "DEFAULT_WORKERS",
    "DesignRegistry",
    "Job",
    "JobQueue",
    "JobRequest",
    "MAX_JOB_PATTERNS",
    "ResultCache",
    "STATE_CANCELLED",
    "STATE_DONE",
    "STATE_FAILED",
    "STATE_QUEUED",
    "STATE_RUNNING",
    "ServerThread",
]

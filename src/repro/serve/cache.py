"""Content-addressed result cache keyed by the checkpoint run key.

The service's cache and the engine's journal share one identity function:
:func:`repro.engine.checkpoint.resolve_run_key`.  Anything that would
invalidate a journal (netlist fingerprint, pattern stream, fault list,
batch geometry, pattern budget, stop/drop semantics, shard count)
invalidates the cached result; anything the bit-identity contract excludes
(executor backend, evaluation kernel, retry policy, budgets, chaos) is a
cache *hit* — a ``kernel=vec`` resubmission of a ``kernel=packed`` job is
served from cache because the engine guarantees the bytes match.

Only complete results are cached.  A ``partial=True`` result (deadline,
drain, cancellation) answers the submission that produced it but is never
reused: the next identical submission re-runs — resuming from the shared
journal — until a complete result exists to pin.

Hits and misses are counted on the process telemetry registry as
``cache.hit`` / ``cache.miss`` (singular — the engine's golden-run cache
owns the plural ``cache.hits``/``cache.misses`` names), so a scrape of
``/metrics`` exposes the service hit rate directly.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional

from repro import telemetry

#: Default number of cached results (a full payload with fault tables for
#: a 20k-gate design is ~1 MB; 128 of those is a modest resident cost).
DEFAULT_CACHE_SIZE = 128


class ResultCache:
    """A bounded LRU of complete result payloads, keyed by run key.

    Single-threaded by design: the service only touches it from the event
    loop.  Payloads are stored with fault tables included; the result
    endpoint strips them per-request, so one cache entry serves both
    ``include_faults`` shapes.
    """

    def __init__(self, max_entries: int = DEFAULT_CACHE_SIZE):
        if max_entries < 1:
            raise ValueError("cache must hold at least one entry")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Optional[str]) -> Optional[Dict[str, Any]]:
        """The cached payload for ``key``, counting the hit or miss.

        ``key=None`` (an unkeyable run: pattern source without a stable
        fingerprint) is always a miss and never stored.
        """
        if key is not None and key in self._entries:
            self._entries.move_to_end(key)
            telemetry.count("cache.hit")
            return self._entries[key]
        telemetry.count("cache.miss")
        return None

    def put(self, key: Optional[str], payload: Dict[str, Any]) -> bool:
        """Store one *complete* result payload; returns whether it stuck.

        Partial results are refused here (not at the call site) so no
        future caller can accidentally pin an interrupted run as the
        canonical answer.
        """
        if key is None or payload.get("partial"):
            return False
        self._entries[key] = payload
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return True

    def stats(self) -> Dict[str, int]:
        return {"entries": len(self._entries), "max_entries": self.max_entries}

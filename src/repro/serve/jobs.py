"""Job lifecycle and the quota-aware queue behind the BIST service.

A :class:`Job` is one accepted submission moving through ``queued ->
running -> done``/``failed`` (or ``cancelled`` if a drain empties the
queue first).  The :class:`JobQueue` hands queued jobs to worker tasks in
FIFO order *per tenant*, skipping tenants already running their quota of
concurrent jobs — one chatty tenant can fill the queue but never starve
another tenant's worker slots.

Everything here runs on the event loop (the blocking engine run happens
in a thread pool, but state transitions come back to the loop), so plain
``asyncio.Condition`` coordination suffices — no locks, no thread-safety
hedging.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.serve.protocol import ApiError, JobRequest

STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_DONE = "done"
STATE_FAILED = "failed"
STATE_CANCELLED = "cancelled"

#: Default cap on concurrently *running* jobs per tenant.
DEFAULT_TENANT_QUOTA = 2

#: Default cap on jobs waiting in the queue (across all tenants).
DEFAULT_MAX_QUEUED = 64


class Job:
    """One accepted submission and everything the API reports about it."""

    def __init__(self, job_id: str, request: JobRequest,
                 run_key: Optional[str]):
        self.id = job_id
        self.request = request
        self.run_key = run_key
        self.state = STATE_QUEUED
        self.cached = False
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: Prepared engine inputs (netlist, faults, source, config, budget)
        #: for queued jobs; cleared implicitly when the job leaves memory.
        self.work: Any = None
        #: Full result payload (fault tables included) once done.
        self.result: Optional[Dict[str, Any]] = None
        #: Structured error payload (an :class:`ApiError` body) once failed.
        self.error: Optional[Dict[str, Any]] = None
        self.error_status: int = 500

    @property
    def tenant(self) -> str:
        return self.request.tenant

    @property
    def finished(self) -> bool:
        return self.state in (STATE_DONE, STATE_FAILED, STATE_CANCELLED)

    def fail(self, error: ApiError) -> None:
        self.state = STATE_FAILED
        self.error = error.payload()
        self.error_status = error.status
        self.finished_at = time.time()

    def status_json(self) -> Dict[str, Any]:
        """The ``GET /v1/jobs/{id}`` body (sans the progress curve)."""
        return {
            "kind": "job",
            "id": self.id,
            "state": self.state,
            "cached": self.cached,
            "tenant": self.tenant,
            "target": self.request.target,
            "run_key": self.run_key,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "request": self.request.to_json(),
            "error": self.error,
        }


class JobQueue:
    """FIFO-per-tenant queue with per-tenant running-job quotas."""

    def __init__(self, tenant_quota: int = DEFAULT_TENANT_QUOTA,
                 max_queued: int = DEFAULT_MAX_QUEUED):
        if tenant_quota < 1:
            raise ValueError("tenant quota must be >= 1")
        self.tenant_quota = tenant_quota
        self.max_queued = max_queued
        self._pending: Deque[Job] = deque()
        self._running: Dict[str, int] = {}
        self._condition = asyncio.Condition()
        self._closed = False

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def n_running(self) -> int:
        return sum(self._running.values())

    def submit(self, job: Job) -> None:
        """Enqueue one job (synchronous: callers hold the event loop)."""
        if self._closed:
            raise ApiError(503, "draining",
                           "service is draining; not accepting new jobs")
        if len(self._pending) >= self.max_queued:
            raise ApiError(429, "queue-full",
                           f"job queue is full ({self.max_queued} pending)")
        self._pending.append(job)
        self._kick()

    def _kick(self) -> None:
        async def _notify() -> None:
            async with self._condition:
                self._condition.notify_all()

        asyncio.ensure_future(_notify())

    def _next_eligible(self) -> Optional[Job]:
        for index, job in enumerate(self._pending):
            if self._running.get(job.tenant, 0) < self.tenant_quota:
                del self._pending[index]
                return job
        return None

    async def acquire(self) -> Optional[Job]:
        """The next runnable job, honouring tenant quotas; None when closed.

        Blocks while the queue is empty or every pending job belongs to a
        tenant already at quota.  The caller owns the returned job's
        running slot and must :meth:`release` it.
        """
        async with self._condition:
            while True:
                job = self._next_eligible()
                if job is not None:
                    job.state = STATE_RUNNING
                    job.started_at = time.time()
                    self._running[job.tenant] = \
                        self._running.get(job.tenant, 0) + 1
                    return job
                if self._closed:
                    return None
                await self._condition.wait()

    async def release(self, job: Job) -> None:
        """Return ``job``'s running slot, waking waiters for its tenant."""
        async with self._condition:
            count = self._running.get(job.tenant, 0) - 1
            if count > 0:
                self._running[job.tenant] = count
            else:
                self._running.pop(job.tenant, None)
            self._condition.notify_all()

    async def close(self) -> List[Job]:
        """Stop accepting and dequeue everything still pending (drain).

        Returns the jobs that never ran, already marked ``cancelled`` —
        the service reports them as such; running jobs are untouched (the
        tripped cancel token stops those at their next round boundary).
        """
        async with self._condition:
            self._closed = True
            cancelled = list(self._pending)
            self._pending.clear()
            now = time.time()
            for job in cancelled:
                job.state = STATE_CANCELLED
                job.finished_at = now
                job.error = {
                    "error": "cancelled",
                    "message": "service drained before the job started",
                }
                job.error_status = 503
            self._condition.notify_all()
            return cancelled

"""A minimal asyncio-streams HTTP/1.1 layer for the BIST service.

Stdlib only, by policy: the repo's zero-heavy-dependency rule applies to
the service too, and the subset of HTTP the API needs — JSON request
bodies framed by ``Content-Length``, JSON responses, keep-alive — is
small enough that a framework would cost more than it saves.  No chunked
transfer encoding, no TLS, no pipelining guarantees beyond sequential
request handling per connection.

The layer knows nothing about routes: :class:`HttpConnection` parses one
request at a time and hands it to an async ``handler(request) ->
Response`` callback; anything the parser rejects (oversized headers,
missing/odd framing) becomes a structured 400/413/431 JSON error in the
same shape the application uses, so clients see exactly one error format.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.cli_args import render_json
from repro.serve.protocol import ApiError

#: Request line + headers may not exceed this many bytes.
MAX_HEADER_BYTES = 32 << 10

#: Request bodies may not exceed this many bytes (bench uploads included).
MAX_BODY_BYTES = 8 << 20

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    422: "Unprocessable Entity", 429: "Too Many Requests",
    431: "Request Header Fields Too Large", 500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes

    def json(self) -> Any:
        """The request body parsed as JSON (raises :class:`ApiError`)."""
        if not self.body:
            raise ApiError(400, "bad-request", "request body is empty")
        try:
            return json.loads(self.body.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ApiError(400, "bad-request",
                           f"request body is not valid JSON: {error}") \
                from error


@dataclass
class Response:
    """One response: status plus an already-rendered body."""

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)

    def encode(self, keep_alive: bool) -> bytes:
        reason = _REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        lines.extend(f"{name}: {value}"
                     for name, value in self.headers.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
        return head + self.body


def json_response(status: int, payload: Any) -> Response:
    """A JSON response rendered through the canonical serializer.

    Routing every body through :func:`repro.cli_args.render_json` is what
    makes the serve result endpoint byte-identical to the ``--json`` CLIs
    for the same payload.
    """
    body = (render_json(payload) + "\n").encode()
    return Response(status, body)


def text_response(status: int, text: str,
                  content_type: str = "text/plain; charset=utf-8") -> Response:
    return Response(status, text.encode(), content_type=content_type)


def error_response(error: ApiError) -> Response:
    return json_response(error.status, error.payload())


Handler = Callable[[Request], Awaitable[Response]]


async def _read_head(reader: asyncio.StreamReader) -> Optional[bytes]:
    """Read up to the blank line ending the header block; None on EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean close between requests
        raise ApiError(400, "bad-request",
                       "truncated request head") from error
    except asyncio.LimitOverrunError as error:
        raise ApiError(431, "headers-too-large",
                       f"request head exceeds {MAX_HEADER_BYTES} bytes") \
            from error
    if len(head) > MAX_HEADER_BYTES:
        raise ApiError(431, "headers-too-large",
                       f"request head exceeds {MAX_HEADER_BYTES} bytes")
    return head


def _parse_head(head: bytes) -> Tuple[str, str, Dict[str, str], Dict[str, str]]:
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError as error:  # pragma: no cover - latin-1 never fails
        raise ApiError(400, "bad-request",
                       "undecodable request head") from error
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ApiError(400, "bad-request",
                       f"malformed request line: {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]
    split = urlsplit(target)
    query = {name: values[-1]
             for name, values in parse_qs(split.query).items()}
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise ApiError(400, "bad-request",
                           f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    return method, split.path or "/", query, headers


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request from the stream; None on a clean connection close."""
    head = await _read_head(reader)
    if head is None:
        return None
    method, path, query, headers = _parse_head(head)
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError as error:
        raise ApiError(400, "bad-request",
                       f"bad Content-Length: {length_text!r}") from error
    if length < 0:
        raise ApiError(400, "bad-request", "negative Content-Length")
    if length > MAX_BODY_BYTES:
        raise ApiError(413, "too-large",
                       f"request body exceeds {MAX_BODY_BYTES} bytes")
    if "transfer-encoding" in headers:
        raise ApiError(400, "bad-request",
                       "chunked request bodies are not supported; "
                       "send Content-Length")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as error:
            raise ApiError(400, "bad-request",
                           "truncated request body") from error
    return Request(method=method, path=path, query=query,
                   headers=headers, body=body)


async def serve_connection(reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter,
                           handler: Handler) -> None:
    """Drive one keep-alive connection until close or a framing error."""
    try:
        while True:
            try:
                request = await read_request(reader)
            except ApiError as error:
                # Framing is broken: answer once, then drop the link —
                # we cannot tell where the next request would start.
                writer.write(error_response(error).encode(keep_alive=False))
                await writer.drain()
                return
            if request is None:
                return
            keep_alive = request.headers.get(
                "connection", "keep-alive").lower() != "close"
            try:
                response = await handler(request)
            except ApiError as error:
                response = error_response(error)
            except Exception as error:  # noqa: BLE001 - boundary of the server
                response = json_response(500, {
                    "error": "internal",
                    "message": f"{type(error).__name__}: {error}",
                })
            writer.write(response.encode(keep_alive=keep_alive))
            await writer.drain()
            if not keep_alive:
                return
    except (ConnectionResetError, BrokenPipeError):
        return
    except asyncio.CancelledError:
        # Loop teardown (drain past the grace window) cancels idle
        # keep-alive connections; that is a normal close, not an error.
        return
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


async def start_http_server(host: str, port: int,
                            handler: Handler) -> asyncio.AbstractServer:
    """Bind and start serving ``handler``; ``port=0`` picks a free port."""

    async def _client(reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        await serve_connection(reader, writer, handler)

    return await asyncio.start_server(
        _client, host=host, port=port, limit=MAX_HEADER_BYTES,
    )


def bound_port(server: asyncio.AbstractServer) -> int:
    """The concrete port a (possibly port-0) server bound to."""
    sockets = getattr(server, "sockets", None) or []
    for sock in sockets:
        return int(sock.getsockname()[1])
    raise RuntimeError("server has no bound sockets")

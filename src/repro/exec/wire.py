"""Length-prefixed frames: the remote executor's wire format.

One frame carries one message (a small dict with a ``"type"`` key; the
``run``/``result`` messages embed the same picklable
:class:`~repro.exec.base.WorkUnit` / :class:`~repro.exec.base.RoundResult`
objects every other backend passes in memory).  The layout is::

    MAGIC(4) | LENGTH(u32, big-endian) | DIGEST(8) | PAYLOAD(LENGTH bytes)

``DIGEST`` is the first 8 bytes of the payload's SHA-256 — enough to
reject a truncated or bit-flipped frame deterministically before
unpickling is even attempted.  It is a *transport* check only; result
integrity is still guarded end to end by the shard-round checksum the
:class:`~repro.exec.driver.RoundDriver` verifies (taken inside the worker
before any chaos corruption), so a hostile-but-well-framed payload cannot
smuggle a wrong answer past the driver either.

Trust model: frames are pickled, so a worker agent must only ever listen
on hosts the coordinator trusts (the same boundary as
``multiprocessing``'s pickled task queues).  See ``docs/DISTRIBUTED.md``.

Every decode failure raises :class:`FrameError` (a
:class:`~repro.errors.SimulationError`, so the driver's retry machinery
treats a mangled frame exactly like a crashed worker).  A connection that
closes cleanly *between* frames raises :class:`ConnectionClosed` instead,
so servers can tell a peer's goodbye from a mid-frame amputation.
"""

from __future__ import annotations

import hashlib
import pickle
import socket
import struct
from typing import Any, Tuple

from repro.errors import SimulationError

#: Frame magic: "repro bist wire", format version 1.
MAGIC = b"RBW1"

_HEADER = struct.Struct("!4sI8s")

#: Hard cap on one frame's payload (a work unit for a million-fault shard
#: round is far below this; anything larger is a corrupt length field).
MAX_FRAME_BYTES = 1 << 31

#: Bytes of the payload SHA-256 carried in the header.
DIGEST_BYTES = 8

#: Size of the fixed frame header in bytes.
HEADER_BYTES = _HEADER.size


class FrameError(SimulationError):
    """A frame that could not be decoded: truncated, corrupt, or foreign."""


class ConnectionClosed(FrameError):
    """The peer closed the connection cleanly at a frame boundary."""


def _digest(payload: bytes) -> bytes:
    return hashlib.sha256(payload).digest()[:DIGEST_BYTES]


def encode_frame(message: Any) -> bytes:
    """One message -> its complete wire frame."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    return _HEADER.pack(MAGIC, len(payload), _digest(payload)) + payload


def decode_frame(buffer: bytes) -> Tuple[Any, int]:
    """The frame at the head of ``buffer`` -> ``(message, bytes consumed)``.

    Raises :class:`FrameError` when the buffer holds less than one whole
    frame (truncation) or the frame fails the magic/digest checks — a
    partial prefix of a valid frame is *never* silently accepted.
    """
    if len(buffer) < HEADER_BYTES:
        raise FrameError(
            f"truncated frame: {len(buffer)} bytes is shorter than the "
            f"{HEADER_BYTES}-byte header"
        )
    magic, length, digest = _HEADER.unpack_from(buffer)
    if magic != MAGIC:
        raise FrameError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} exceeds the cap")
    end = HEADER_BYTES + length
    if len(buffer) < end:
        raise FrameError(
            f"truncated frame: header promises {length} payload bytes, "
            f"buffer holds {len(buffer) - HEADER_BYTES}"
        )
    payload = bytes(buffer[HEADER_BYTES:end])
    if _digest(payload) != digest:
        raise FrameError("frame integrity digest mismatch")
    try:
        message = pickle.loads(payload)
    except Exception as error:  # noqa: BLE001 - any unpickling failure
        raise FrameError(f"frame payload failed to unpickle: {error}") from error
    return message, end


def send_frame(sock: socket.socket, message: Any) -> None:
    """Write one message to a connected socket as a single frame."""
    sock.sendall(encode_frame(message))


def _recv_exact(sock: socket.socket, n: int, *, at_boundary: bool) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if at_boundary and remaining == n:
                raise ConnectionClosed("peer closed the connection")
            raise FrameError(
                f"connection closed mid-frame ({n - remaining} of {n} "
                "bytes received)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> Any:
    """Read exactly one frame from a connected socket.

    Honours the socket's configured timeout (``socket.timeout`` — an
    ``OSError`` — bubbles to the caller).  Raises :class:`ConnectionClosed`
    on a clean close between frames, :class:`FrameError` on a close
    mid-frame or a corrupt frame.
    """
    header = _recv_exact(sock, HEADER_BYTES, at_boundary=True)
    magic, length, _ = _HEADER.unpack_from(header)
    if magic != MAGIC:
        raise FrameError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} exceeds the cap")
    payload = _recv_exact(sock, length, at_boundary=False)
    message, _ = decode_frame(header + payload)
    return message


__all__ = [
    "MAGIC",
    "HEADER_BYTES",
    "DIGEST_BYTES",
    "MAX_FRAME_BYTES",
    "ConnectionClosed",
    "FrameError",
    "decode_frame",
    "encode_frame",
    "read_frame",
    "send_frame",
]

"""The round driver: fault tolerance above the executor boundary.

Retry waves with exponential backoff, shard timeouts, integrity-checksum
verification, backend rebuilds and the degraded in-process fallback all
live *here*, not in any backend — which is what makes them contracts every
:class:`~repro.exec.base.Executor` inherits rather than ProcessPool
features.  A backend only has to run work units and fail honestly; the
driver guarantees that every pending shard of every round ends up in the
results map, whatever happened on the way.

The driver also owns the guard's memory-ladder "serial" rung: when the
watchdog demands in-process execution it *releases* the backend (worker
RSS actually drops) and runs subsequent rounds through the same
:func:`~repro.exec.worker.run_work_unit` primitive in the parent, so
results — and journal records — stay bit-identical while peak memory
falls.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro import telemetry
from repro.errors import ReproError, SimulationError
from repro.exec.base import Executor, RoundHandle, WorkUnit
from repro.exec.config import RetryPolicy
from repro.exec.worker import (
    consume_batches,
    make_simulator,
    round_checksum,
    run_work_unit,
)
from repro.faultsim.faults import Fault
from repro.faultsim.simulator import FaultSimulator
from repro.netlist.netlist import Netlist

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.chaos import FaultInjector
    from repro.engine.instrumentation import ShardStats

#: One round's merged outcome per shard: (detections, survivors,
#: measurements-or-None-when-replayed-from-journal).
ShardOutcome = Tuple[Dict[Fault, int], List[Fault], Optional[Dict]]


class CorruptShardRound(SimulationError):
    """A shard round whose payload failed integrity verification."""


class RoundDriver:
    """Runs rounds of work units on one executor, absorbing its failures."""

    def __init__(
        self,
        executor: Executor,
        netlist: Netlist,
        batch_width: int,
        retry: RetryPolicy,
        chaos: Optional["FaultInjector"] = None,
        kernel: str = "packed",
    ):
        self.executor = executor
        self._netlist = netlist
        self._batch_width = batch_width
        self._retry = retry
        self._chaos = chaos
        self._kernel = kernel
        self._degraded_simulator: Optional[FaultSimulator] = None
        # Backends that own their hang detection (supports_timeout=False,
        # detects_hangs=True — the remote coordinator) derive internal
        # deadlines from the same policy; see "The timeout contract" in
        # repro.exec.base.
        executor.configure(retry)
        # A driver deadline is armed ONLY where handle.result(timeout)
        # honours it; elsewhere it would either be ignored (serial) or
        # race the backend's internal deadline (remote).
        self._timeout: Optional[float] = (
            retry.shard_timeout
            if executor.capabilities.supports_timeout
            else None
        )

    # ------------------------------------------------------------- internals

    def _parent_simulator(self) -> FaultSimulator:
        # Same kernel as the workers: the kernels are bit-identical, but a
        # degraded round should not silently change the run's cost model.
        if self._degraded_simulator is None:
            self._degraded_simulator = make_simulator(
                self._netlist, self._batch_width, self._kernel
            )
        return self._degraded_simulator

    def _unit(
        self,
        shard_id: int,
        faults: List[Fault],
        round_batches: List[Tuple[int, Dict[int, int]]],
        pattern_base: int,
        round_index: int,
        drop_detected: bool,
        attempt: int,
    ) -> WorkUnit:
        return WorkUnit(
            shard_id=shard_id,
            faults=tuple(faults),
            golden_batches=tuple(round_batches),
            pattern_base=pattern_base,
            round_index=round_index,
            drop_detected=drop_detected,
            attempt=attempt,
            chaos=self._chaos,
        )

    # ------------------------------------------------------------ round entry

    def execute_round(
        self,
        shards: Dict[int, List[Fault]],
        stats: Dict[int, ShardStats],
        pending: Set[int],
        round_batches: List[Tuple[int, Dict[int, int]]],
        pattern_base: int,
        round_index: int,
        drop_detected: bool,
        results: Dict[int, ShardOutcome],
    ) -> None:
        """Run one round's pending shards to completion, whatever fails.

        Retry waves: all pending shards are submitted together; any that
        fail (worker crash, timeout, integrity mismatch) force a backend
        rebuild and are resubmitted after exponential backoff, up to
        ``RetryPolicy.max_retries`` times each.  A shard past its budget
        runs degraded — serially, in the parent process — so this method
        always returns with every pending shard in ``results``.
        """
        attempts = {shard_id: 0 for shard_id in pending}
        while pending:
            handles: Dict[int, RoundHandle] = {
                shard_id: self.executor.submit_round(self._unit(
                    shard_id, shards[shard_id], round_batches, pattern_base,
                    round_index, drop_detected, attempts[shard_id],
                ))
                for shard_id in sorted(pending)
            }
            deadline = (
                None if self._timeout is None
                else time.monotonic() + self._timeout
            )
            failed: List[int] = []
            for shard_id, handle in handles.items():
                try:
                    remaining = (
                        None if deadline is None
                        else max(deadline - time.monotonic(), 1e-3)
                    )
                    outcome = handle.result(timeout=remaining)
                    if outcome.checksum != round_checksum(
                        outcome.detections, outcome.survivors,
                        int(outcome.measurements["patterns"]),
                    ):
                        raise CorruptShardRound(
                            f"shard {shard_id} round {round_index}: "
                            "integrity checksum mismatch"
                        )
                except FutureTimeoutError:
                    stats[shard_id].timeouts += 1
                    failed.append(shard_id)
                except (BrokenExecutor, ReproError, pickle.PickleError,
                        OSError):
                    # A dead worker (BrokenProcessPool), a worker-raised
                    # library error (ChaosError, SimulationError), a
                    # corrupted payload (CorruptShardRound), or an
                    # IPC/pickling failure: all retried the same way.
                    # Anything else — a genuine bug — propagates instead
                    # of being silently retried.
                    stats[shard_id].failures += 1
                    telemetry.count("engine.swallowed_errors")
                    failed.append(shard_id)
                else:
                    results[shard_id] = (
                        outcome.detections, outcome.survivors,
                        outcome.measurements,
                    )
                    pending.discard(shard_id)
                    if outcome.spans:
                        telemetry.get_telemetry().tracer.absorb(outcome.spans)
            if not failed:
                break
            # A dead or hung worker poisons most backends; rebuild before
            # the next wave (healthy shards already returned their results).
            self.executor.restart()
            for shard_id in failed:
                attempts[shard_id] += 1
                if attempts[shard_id] > self._retry.max_retries:
                    with telemetry.span(
                        "engine.shard_round.degraded",
                        shard=shard_id, round=round_index,
                        attempts=attempts[shard_id],
                    ):
                        detections, survivors, measured = consume_batches(
                            self._parent_simulator(), shards[shard_id],
                            round_batches, pattern_base, drop_detected,
                        )
                    results[shard_id] = (detections, survivors, measured)
                    stats[shard_id].degraded_reason = (
                        f"retry budget exhausted after {attempts[shard_id]} "
                        f"attempts at round {round_index}; ran in-process"
                    )
                    pending.discard(shard_id)
                else:
                    stats[shard_id].retries += 1
            if pending and self._retry.backoff > 0:
                wave = min(attempts[shard_id] for shard_id in pending)
                time.sleep(self._retry.backoff * (2 ** max(wave - 1, 0)))

    def run_round_in_process(
        self,
        shards: Dict[int, List[Fault]],
        pending: Set[int],
        round_batches: List[Tuple[int, Dict[int, int]]],
        pattern_base: int,
        round_index: int,
        drop_detected: bool,
        results: Dict[int, ShardOutcome],
    ) -> None:
        """Run one round's pending shards serially in the parent.

        The memory guard's last rung before stopping: the backend has been
        released, so every shard round goes through the same
        :func:`~repro.exec.worker.consume_batches` primitive the workers
        use — results (and journal records) stay bit-identical, only the
        peak memory drops.
        """
        for shard_id in sorted(pending):
            with telemetry.span(
                "engine.shard_round.degraded",
                shard=shard_id, round=round_index, reason="memory",
            ):
                detections, survivors, measured = consume_batches(
                    self._parent_simulator(), shards[shard_id], round_batches,
                    pattern_base, drop_detected,
                )
            results[shard_id] = (detections, survivors, measured)
        pending.clear()


__all__ = [
    "CorruptShardRound",
    "RoundDriver",
    "ShardOutcome",
    "run_work_unit",
]

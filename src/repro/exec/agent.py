"""The peer worker agent: one host's share of a distributed run.

``python -m repro worker --listen HOST:PORT`` starts a :class:`WorkerAgent`
that accepts framed connections (:mod:`repro.exec.wire`) from a
coordinator's :class:`~repro.exec.remote.RemoteExecutor` and answers a
deliberately tiny request vocabulary:

``init``
    Carries the same pickled ``(netlist, batch_width, telemetry_on,
    kernel)`` payload the process backend hands ``init_worker``.  The
    agent builds (or reuses, keyed by payload digest) a simulator and
    replies ``ready`` — so reconnects and repeated runs against the same
    circuit skip the rebuild.
``run``
    One :class:`~repro.exec.base.WorkUnit`; the agent executes it with the
    shared :func:`~repro.exec.worker.run_work_unit` primitive (the same
    function every local backend runs, which is what keeps remote results
    bit-identical to serial) and replies ``result`` — or ``error`` when
    the unit raised a clean :class:`~repro.errors.ReproError`.
``ping`` / ``pong``
    Heartbeat.  Pings arrive on fresh short-lived connections, so a node
    busy simulating still answers them; an unanswered ping therefore
    means the *process* is gone or wedged, not merely busy.
``cancel``
    The coordinator's run was cancelled (SIGTERM/budget); the agent
    acknowledges with ``cancel-ack``.  Units are round-sized, so draining
    means: finish nothing new — the coordinator stops dispatching and the
    agent simply goes idle.
``hang`` / ``exit``
    Deterministic chaos hooks (``node_hang`` / ``node_down``): sleep
    without replying, or die hard (``os._exit``) the way an OOM-killed
    node would.  Only ever sent by a coordinator running a chaos plan.
``shutdown`` / ``bye``
    Stop the whole agent (replies ``bye`` first) / close this connection.

Anything malformed (bad frame, unknown type) drops the connection; the
coordinator treats that like any other node failure.  See
``docs/DISTRIBUTED.md`` for the topology and trust model.
"""

from __future__ import annotations

import hashlib
import os
import socket
import threading
import time
from collections import OrderedDict
from typing import Optional, Tuple

from repro import telemetry
from repro.errors import ReproError
from repro.exec.base import WorkUnit
from repro.exec.wire import ConnectionClosed, FrameError, read_frame, send_frame
from repro.exec.worker import make_simulator, run_work_unit

#: Simulators kept warm across connections/runs, keyed by init digest.
_SIMULATOR_CACHE_SIZE = 4

#: Accept-loop poll interval, so ``shutdown()`` is honoured promptly.
_ACCEPT_POLL_SECONDS = 0.2


class WorkerAgent:
    """One listening worker: accept loop + a thread per connection."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self._host = host
        self._port = port
        self._listener: Optional[socket.socket] = None
        self._stop = threading.Event()
        # digest -> (unpickled init payload bytes, simulator, its lock).
        # The lock serialises units per simulator: the coordinator keeps
        # one work connection per node, but a net_drop reconnect can
        # briefly overlap the old connection's thread with the new one.
        self._simulators: "OrderedDict[str, Tuple[object, threading.Lock]]"
        self._simulators = OrderedDict()
        self._cache_lock = threading.Lock()

    # ------------------------------------------------------------ lifecycle

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port); valid after :meth:`start`."""
        assert self._listener is not None, "agent used before start()"
        addr = self._listener.getsockname()
        return addr[0], addr[1]

    def start(self) -> Tuple[str, int]:
        """Bind and listen; returns the bound (host, port)."""
        if self._listener is not None:
            return self.address
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(16)
        listener.settimeout(_ACCEPT_POLL_SECONDS)
        self._listener = listener
        return self.address

    def serve_forever(self) -> None:
        """Accept connections until :meth:`shutdown`; blocks the caller."""
        self.start()
        assert self._listener is not None
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed under us by shutdown()
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()
        self._close_listener()

    def shutdown(self) -> None:
        """Stop accepting; idempotent, callable from any thread."""
        self._stop.set()
        self._close_listener()

    def _close_listener(self) -> None:
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass

    # ---------------------------------------------------------- simulators

    def _simulator_for(self, payload: bytes):
        """The cached (simulator, lock) for one init payload, LRU-bounded."""
        import pickle

        digest = hashlib.sha256(payload).hexdigest()
        with self._cache_lock:
            entry = self._simulators.get(digest)
            if entry is not None:
                self._simulators.move_to_end(digest)
                return entry
            netlist, batch_width, telemetry_on, kernel = pickle.loads(payload)
            # Same contract as the process backend's init_worker: the init
            # payload carries the run's telemetry switch because the agent
            # shares no parent state with the coordinator.
            telemetry.get_telemetry().reset()
            if telemetry_on:
                telemetry.enable()
            simulator = make_simulator(netlist, batch_width, kernel)
            entry = (simulator, threading.Lock())
            self._simulators[digest] = entry
            while len(self._simulators) > _SIMULATOR_CACHE_SIZE:
                self._simulators.popitem(last=False)
            return entry

    # --------------------------------------------------------- connections

    def _serve_connection(self, conn: socket.socket) -> None:
        entry = None  # (simulator, lock) after this connection's init
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            while not self._stop.is_set():
                try:
                    message = read_frame(conn)
                except ConnectionClosed:
                    return
                kind = message.get("type") if isinstance(message, dict) else None
                if kind == "init":
                    entry = self._simulator_for(message["payload"])
                    send_frame(conn, {"type": "ready"})
                elif kind == "run":
                    if entry is None:
                        send_frame(
                            conn,
                            {"type": "error",
                             "message": "run before init on this connection"},
                        )
                        continue
                    self._run_unit(conn, entry, message["unit"])
                elif kind == "ping":
                    send_frame(conn, {"type": "pong"})
                elif kind == "cancel":
                    # Round-sized units mean there is nothing to interrupt
                    # mid-flight; acknowledging lets the coordinator's
                    # drain complete deterministically.
                    send_frame(conn, {"type": "cancel-ack"})
                elif kind == "hang":
                    # Chaos node_hang: wedge without replying so the
                    # coordinator's dispatch timeout sees a real hang.
                    time.sleep(float(message.get("seconds", 5.0)))
                elif kind == "exit":
                    # Chaos node_down: die the way an OOM kill would.
                    os._exit(13)
                elif kind == "bye":
                    return
                elif kind == "shutdown":
                    send_frame(conn, {"type": "bye"})
                    self.shutdown()
                    return
                else:
                    return  # unknown/malformed message: drop the peer
        except (FrameError, OSError):
            return  # coordinator vanished or sent garbage; just hang up
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _run_unit(self, conn: socket.socket, entry, unit: WorkUnit) -> None:
        simulator, lock = entry
        try:
            with lock:
                result = run_work_unit(simulator, unit, in_process=False)
        except ReproError as error:
            # Clean failures (chaos ``raise``, simulation errors) go back
            # as error frames so the coordinator can retry without
            # declaring the node dead.
            send_frame(conn, {"type": "error", "message": str(error)})
            return
        send_frame(conn, {"type": "result", "result": result})


def serve(host: str, port: int, announce: bool = True) -> None:
    """Blocking entry point used by ``python -m repro worker``."""
    agent = WorkerAgent(host, port)
    bound_host, bound_port = agent.start()
    if announce:
        print(f"worker listening on {bound_host}:{bound_port}", flush=True)
    agent.serve_forever()


__all__ = ["WorkerAgent", "serve"]

"""``repro.exec``: pluggable execution backends and the run configuration.

The engine (:func:`repro.engine.simulate`) describes *what* to compute; a
:class:`RunConfig` describes how a run is shaped; an :class:`Executor`
backend decides *where* the shard rounds actually execute — in-process
(``serial``), on a thread pool (``thread``) or on a warm process pool
(``process``).  Results are bit-identical across all of them; the choice
only moves cost.  See ``docs/EXECUTORS.md`` for the protocol and how to
write a backend.
"""

from repro.exec.base import (
    DEFAULT_EXECUTOR,
    EXECUTOR_ENV_VAR,
    ExecutionContext,
    Executor,
    ExecutorCapabilities,
    RoundHandle,
    RoundResult,
    WorkUnit,
    available_executors,
    create_executor,
    register_executor,
    resolve_executor_name,
)
from repro.exec.config import (
    CheckpointPolicy,
    ExecutionPolicy,
    LEGACY_KEYWORDS,
    RetryPolicy,
    RunConfig,
    canonical_fields,
    reset_legacy_warning,
    runconfig_from_legacy,
)
from repro.exec.driver import CorruptShardRound, RoundDriver
from repro.exec.process import ProcessExecutor
from repro.exec.serial import SerialExecutor
from repro.exec.thread import ThreadExecutor

register_executor("serial", SerialExecutor)
register_executor("thread", ThreadExecutor)
register_executor("process", ProcessExecutor)

__all__ = [
    "DEFAULT_EXECUTOR",
    "EXECUTOR_ENV_VAR",
    "LEGACY_KEYWORDS",
    "CheckpointPolicy",
    "CorruptShardRound",
    "ExecutionContext",
    "ExecutionPolicy",
    "Executor",
    "ExecutorCapabilities",
    "ProcessExecutor",
    "RetryPolicy",
    "RoundDriver",
    "RoundHandle",
    "RoundResult",
    "RunConfig",
    "SerialExecutor",
    "ThreadExecutor",
    "WorkUnit",
    "available_executors",
    "canonical_fields",
    "create_executor",
    "register_executor",
    "reset_legacy_warning",
    "resolve_executor_name",
    "runconfig_from_legacy",
]

"""``repro.exec``: pluggable execution backends and the run configuration.

The engine (:func:`repro.engine.simulate`) describes *what* to compute; a
:class:`RunConfig` describes how a run is shaped; an :class:`Executor`
backend decides *where* the shard rounds actually execute — in-process
(``serial``), on a thread pool (``thread``), on a warm process pool
(``process``) or on peer worker hosts (``remote``, see
``docs/DISTRIBUTED.md``).  Results are bit-identical across all of them;
the choice only moves cost.  See ``docs/EXECUTORS.md`` for the protocol
and how to write a backend.
"""

from repro.exec.base import (
    DEFAULT_EXECUTOR,
    EXECUTOR_ENV_VAR,
    ExecutionContext,
    Executor,
    ExecutorCapabilities,
    ExecutorStartError,
    NodeStats,
    RoundHandle,
    RoundResult,
    WorkUnit,
    available_executors,
    create_executor,
    register_executor,
    resolve_executor_name,
)
from repro.exec.config import (
    CheckpointPolicy,
    ExecutionPolicy,
    LEGACY_KEYWORDS,
    RetryPolicy,
    RunConfig,
    canonical_fields,
    reset_legacy_warning,
    runconfig_from_legacy,
)
from repro.exec.driver import CorruptShardRound, RoundDriver
from repro.exec.process import ProcessExecutor
from repro.exec.remote import PEERS_ENV_VAR, RemoteExecutor, set_default_peers
from repro.exec.serial import SerialExecutor
from repro.exec.thread import ThreadExecutor

register_executor("serial", SerialExecutor)
register_executor("thread", ThreadExecutor)
register_executor("process", ProcessExecutor)
register_executor("remote", RemoteExecutor)

__all__ = [
    "DEFAULT_EXECUTOR",
    "EXECUTOR_ENV_VAR",
    "LEGACY_KEYWORDS",
    "PEERS_ENV_VAR",
    "CheckpointPolicy",
    "CorruptShardRound",
    "ExecutionContext",
    "ExecutionPolicy",
    "Executor",
    "ExecutorCapabilities",
    "ExecutorStartError",
    "NodeStats",
    "ProcessExecutor",
    "RemoteExecutor",
    "RetryPolicy",
    "RoundDriver",
    "RoundHandle",
    "RoundResult",
    "RunConfig",
    "SerialExecutor",
    "ThreadExecutor",
    "WorkUnit",
    "available_executors",
    "canonical_fields",
    "create_executor",
    "register_executor",
    "reset_legacy_warning",
    "resolve_executor_name",
    "set_default_peers",
    "runconfig_from_legacy",
]

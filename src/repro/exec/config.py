"""The run configuration surface: one frozen object instead of ~19 kwargs.

Every capability PR 1-5 added to :func:`repro.engine.simulate` widened the
same keyword signature — jobs, timeouts, retries, chaos, checkpointing,
budgets, cancellation.  :class:`RunConfig` folds that accretion into one
frozen, introspectable object grouping four policy blocks:

:class:`ExecutionPolicy`
    *How* the run executes: which :mod:`repro.exec` backend, how many
    shards, how patterns are batched and chunked into fan-out rounds.
:class:`RetryPolicy`
    The fault-tolerance contract every backend inherits: per-round retry
    budget, backoff base and the shard timeout.
:class:`CheckpointPolicy`
    Where (and whether) completed shard rounds are journaled, and whether
    an existing journal is replayed.
:class:`~repro.guard.budget.Budget`
    The existing governance object (deadline / pattern cap / RSS ceiling),
    unchanged.

Only a *canonical* subset of the configuration identifies a run's results:
the executor choice, retry policy, budget, cancellation, chaos plan and
lint pre-flight are all execution strategy — two runs differing only in
those produce bit-identical results, so :func:`canonical_fields` excludes
them and the checkpoint run key (:mod:`repro.engine.checkpoint`) stays
stable across backends (and across this refactor: the key bytes match the
pre-``RunConfig`` engine exactly, so old journals still resume).

The old keyword call-shapes remain accepted through
:func:`runconfig_from_legacy`, which maps them onto a ``RunConfig`` and
warns once per process with a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple, Union

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.chaos import FaultInjector
    from repro.guard.budget import Budget
    from repro.guard.cancel import CancelToken

#: Batches per fan-out round: large enough to amortize task dispatch and
#: golden-batch shipping, small enough that early stop wastes little work.
DEFAULT_CHUNK_BATCHES = 4

#: Default bounded-retry budget per shard round before degrading to
#: in-process execution.
DEFAULT_MAX_RETRIES = 2

#: Base of the exponential backoff between retry waves (seconds).
DEFAULT_RETRY_BACKOFF = 0.05

#: Default upper bound on applied patterns.
DEFAULT_MAX_PATTERNS = 1 << 16

#: Default packed batch width (patterns per simulator pass).
DEFAULT_BATCH_WIDTH = 256


#: Kernel names an :class:`ExecutionPolicy` may request (``None`` defers
#: to ``$REPRO_ENGINE_KERNEL`` and then to ``auto``).
KERNEL_CHOICES = ("auto", "packed", "vec")


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a run is executed: backend, shard count, batching geometry.

    ``executor=None`` defers the backend choice to the environment
    (``$REPRO_ENGINE_EXECUTOR``) and finally to ``"process"`` — see
    :func:`repro.exec.resolve_executor_name`.  ``kernel=None`` likewise
    defers the evaluation kernel to ``$REPRO_ENGINE_KERNEL`` and then to
    a cost heuristic (``auto``) choosing between the packed event-driven
    simulator and the numpy-vectorised kernel — see
    :func:`repro.engine.vec.resolve_kernel`.  Neither choice ever affects
    results, only where (and how fast) the work happens.
    """

    executor: Optional[str] = None
    jobs: Optional[int] = None
    batch_width: int = DEFAULT_BATCH_WIDTH
    chunk_batches: int = DEFAULT_CHUNK_BATCHES
    kernel: Optional[str] = None

    def __post_init__(self) -> None:
        if self.batch_width < 1:
            raise SimulationError("batch width must be positive")
        if self.chunk_batches < 1:
            raise SimulationError("chunk_batches must be positive")
        if self.kernel is not None and self.kernel not in KERNEL_CHOICES:
            raise SimulationError(
                f"unknown engine kernel {self.kernel!r} "
                f"(expected one of: {', '.join(KERNEL_CHOICES)})"
            )

    @property
    def effective_jobs(self) -> int:
        """The shard count the run actually uses (``None`` -> 1)."""
        return 1 if self.jobs is None else max(1, int(self.jobs))


@dataclass(frozen=True)
class RetryPolicy:
    """Per-shard-round fault tolerance every backend inherits."""

    max_retries: int = DEFAULT_MAX_RETRIES
    backoff: float = DEFAULT_RETRY_BACKOFF
    shard_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise SimulationError("max_retries must be >= 0")


@dataclass(frozen=True)
class CheckpointPolicy:
    """Journaling of completed shard rounds (resumable runs)."""

    directory: Optional[Union[str, Path]] = None
    resume: bool = False


@dataclass(frozen=True)
class RunConfig:
    """Everything that shapes one engine run, in one frozen object.

    ``budget`` and ``cancel`` are *shared mutable* governance objects by
    design (a budget is armed once across a sweep; a token is tripped by a
    signal handler); freezing the config prevents rebinding them, not
    using them.  ``chaos=None`` defers to ``$REPRO_CHAOS`` at run time.
    """

    execution: ExecutionPolicy = field(default_factory=ExecutionPolicy)
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    checkpoint: CheckpointPolicy = field(default_factory=CheckpointPolicy)
    budget: Optional["Budget"] = None
    cancel: Optional["CancelToken"] = None
    chaos: Optional["FaultInjector"] = None
    max_patterns: int = DEFAULT_MAX_PATTERNS
    stop_when_complete: bool = True
    drop_detected: bool = True
    check: bool = True
    #: Opt-in static-testability pre-flight: compute the SCOAP/COP
    #: :class:`~repro.analysis.random_testability.TestabilityProfile`
    #: before the run and stamp the predicted-vs-measured coverage delta
    #: on the result.  Advisory — never affects what the run computes, so
    #: it is (deliberately) excluded from :func:`canonical_fields`.
    analyze: bool = False

    def replace(self, **changes: Any) -> "RunConfig":
        """A copy with top-level fields replaced (frozen-friendly)."""
        return dataclasses.replace(self, **changes)

    def with_execution(self, **changes: Any) -> "RunConfig":
        """A copy with :class:`ExecutionPolicy` fields replaced."""
        return self.replace(execution=dataclasses.replace(self.execution, **changes))


def canonical_fields(config: RunConfig, jobs: int) -> Tuple[Any, ...]:
    """The configuration subset that identifies a run's *results*.

    Everything here changes what a run computes; everything excluded —
    executor choice, evaluation kernel (packed vs vec), retry policy,
    budget, cancellation, chaos, the lint pre-flight — is execution
    strategy that the bit-identity contract guarantees cannot move a
    result.  The tuple layout is frozen: it feeds the checkpoint run key,
    and old journals must keep resuming (including across kernels).

    ``jobs`` is passed explicitly (not read from the config) because the
    engine collapses degenerate runs — one live fault, ``jobs=None`` — to
    a single shard, and the journal must be keyed by the geometry actually
    executed.
    """
    return (
        config.execution.batch_width,
        config.max_patterns,
        jobs,
        config.execution.chunk_batches,
        config.stop_when_complete,
        config.drop_detected,
    )


#: Legacy ``simulate`` keywords the deprecation shim accepts, with the
#: RunConfig location each maps onto (documentation + test surface).
LEGACY_KEYWORDS: Dict[str, str] = {
    "max_patterns": "max_patterns",
    "jobs": "execution.jobs",
    "batch_width": "execution.batch_width",
    "chunk_batches": "execution.chunk_batches",
    "executor": "execution.executor",
    "shard_timeout": "retry.shard_timeout",
    "max_retries": "retry.max_retries",
    "retry_backoff": "retry.backoff",
    "checkpoint_dir": "checkpoint.directory",
    "resume": "checkpoint.resume",
    "stop_when_complete": "stop_when_complete",
    "drop_detected": "drop_detected",
    "check": "check",
    "budget": "budget",
    "cancel": "cancel",
    "chaos": "chaos",
}

_legacy_warned = False


def reset_legacy_warning() -> None:
    """Re-arm the once-per-process deprecation warning (test hook)."""
    global _legacy_warned
    _legacy_warned = False


def _warn_legacy(keys: Tuple[str, ...]) -> None:
    global _legacy_warned
    if _legacy_warned:
        return
    _legacy_warned = True
    warnings.warn(
        "passing engine run options as keyword arguments "
        f"({', '.join(sorted(keys))}) is deprecated; build a "
        "repro.exec.RunConfig and pass it as simulate(..., config=...) "
        "(this warning is emitted once per process)",
        DeprecationWarning,
        stacklevel=4,
    )


def runconfig_from_legacy(
    options: Dict[str, Any], warn: bool = True
) -> RunConfig:
    """Map pre-``RunConfig`` keyword arguments onto a :class:`RunConfig`.

    Unknown keywords raise :class:`~repro.errors.SimulationError` (they
    were a ``TypeError`` before; a structured error keeps the CLI's error
    paths uniform).  With ``warn`` the shim emits one
    :class:`DeprecationWarning` per process.
    """
    unknown = sorted(set(options) - set(LEGACY_KEYWORDS))
    if unknown:
        raise SimulationError(
            f"unknown engine option(s): {', '.join(unknown)} "
            f"(expected a RunConfig field path or one of "
            f"{', '.join(sorted(LEGACY_KEYWORDS))})"
        )
    if warn and options:
        _warn_legacy(tuple(options))
    execution = ExecutionPolicy(
        executor=options.get("executor"),
        jobs=options.get("jobs"),
        batch_width=options.get("batch_width", DEFAULT_BATCH_WIDTH),
        chunk_batches=options.get("chunk_batches", DEFAULT_CHUNK_BATCHES),
    )
    retry = RetryPolicy(
        max_retries=options.get("max_retries", DEFAULT_MAX_RETRIES),
        backoff=options.get("retry_backoff", DEFAULT_RETRY_BACKOFF),
        shard_timeout=options.get("shard_timeout"),
    )
    checkpoint = CheckpointPolicy(
        directory=options.get("checkpoint_dir"),
        resume=options.get("resume", False),
    )
    return RunConfig(
        execution=execution,
        retry=retry,
        checkpoint=checkpoint,
        budget=options.get("budget"),
        cancel=options.get("cancel"),
        chaos=options.get("chaos"),
        max_patterns=options.get("max_patterns", DEFAULT_MAX_PATTERNS),
        stop_when_complete=options.get("stop_when_complete", True),
        drop_detected=options.get("drop_detected", True),
        check=options.get("check", True),
    )

"""The process-pool backend: true CPU parallelism with crash isolation.

Wraps the engine's historical restartable worker pool: a
:class:`concurrent.futures.ProcessPoolExecutor` (fork context where
available) whose workers each hold a pickled copy of the netlist, rebuilt
from scratch whenever a dead or hung worker poisons it.

New here: **warm-pool reuse across ``simulate()`` calls**.  Spinning a
pool up — forking workers, unpickling the netlist per worker — costs more
than an entire run on small kernels (see ``BENCH_engine.json``).  On
``stop()`` a healthy pool is parked in a module-level cache keyed by its
init payload digest and worker count; the next run with the same netlist
geometry adopts it instead of paying the spin-up again (a Table-2 sweep
hits this on every seed repetition).  The cache holds one pool; a run
with a different key evicts (and terminates) the parked one.
``release()`` — the guard's memory ladder and interpreter exit — always
tears workers down for real, so RSS actually drops.
"""

from __future__ import annotations

import atexit
import hashlib
import multiprocessing
import pickle
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Dict, Optional, Tuple

from repro import telemetry
from repro.exec.base import (
    ExecutionContext,
    Executor,
    ExecutorCapabilities,
    RoundHandle,
    RoundResult,
    WorkUnit,
)
from repro.exec.worker import execute_unit, init_worker

_CAPABILITIES = ExecutorCapabilities(
    parallel=True,
    isolated=True,
    supports_timeout=True,
    detects_hangs=True,
    worker_pids=True,
)


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


class _WorkerPool:
    """A restartable process pool.

    ``ProcessPoolExecutor`` is poisoned by a dead worker (BrokenProcessPool)
    and cannot cancel a hung one, so the recovery path for *any* shard
    failure is the same: abandon the executor, terminate its processes and
    build a fresh one lazily on the next submit.
    """

    def __init__(self, max_workers: int, init_payload: bytes):
        self._max_workers = max_workers
        self._init_payload = init_payload
        self._executor: Optional[ProcessPoolExecutor] = None
        self.restarts = 0

    def submit(self, fn, *args) -> Future:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self._max_workers,
                mp_context=_mp_context(),
                initializer=init_worker,
                initargs=(self._init_payload,),
            )
        return self._executor.submit(fn, *args)

    def restart(self) -> None:
        self.shutdown()
        self.restarts += 1

    def worker_pids(self) -> Tuple[int, ...]:
        """PIDs of the live worker processes (for RSS sampling)."""
        if self._executor is None:
            return ()
        processes = getattr(self._executor, "_processes", {}) or {}
        return tuple(
            process.pid for process in list(processes.values())
            if process is not None and process.pid is not None
        )

    def shutdown(self) -> None:
        executor, self._executor = self._executor, None
        if executor is None:
            return
        # Snapshot worker processes before shutdown: hung workers would
        # otherwise linger until their (possibly unbounded) task finishes.
        processes = list(getattr(executor, "_processes", {}).values())
        executor.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            try:
                process.terminate()
            except (OSError, ValueError, AttributeError):
                # Already exited/closed (or reaped by the executor between
                # our snapshot and the terminate); nothing left to kill.
                telemetry.count("engine.swallowed_errors")


# One parked pool, keyed by (init payload digest, worker count).  A single
# slot is deliberate: the dominant reuse pattern is the same netlist run
# repeatedly (seed sweeps, benchmark repetitions), and one slot cannot
# accumulate idle worker processes across many distinct circuits.
_POOL_CACHE: Dict[Tuple[str, int], _WorkerPool] = {}


def _drain_pool_cache() -> None:
    """Terminate every parked pool (interpreter exit, tests)."""
    while _POOL_CACHE:
        _, pool = _POOL_CACHE.popitem()
        pool.shutdown()


atexit.register(_drain_pool_cache)


class _FutureHandle(RoundHandle):
    def __init__(self, future: "Future[RoundResult]"):
        self._future = future

    def result(self, timeout: Optional[float] = None) -> RoundResult:
        return self._future.result(timeout=timeout)


class ProcessExecutor(Executor):
    """Sharded execution over a warm, restartable process pool."""

    name = "process"

    @property
    def capabilities(self) -> ExecutorCapabilities:
        return _CAPABILITIES

    def __init__(self) -> None:
        self._pool: Optional[_WorkerPool] = None
        self._cache_key: Optional[Tuple[str, int]] = None

    def start(self, context: ExecutionContext) -> None:
        if self._pool is not None:
            return
        # The kernel is part of the payload (and therefore the warm-pool
        # cache key): a parked pool of packed workers must never serve a
        # vec run, and vice versa.
        payload = pickle.dumps(
            (context.netlist, context.batch_width,
             context.telemetry_enabled, context.kernel)
        )
        key = (hashlib.sha256(payload).hexdigest(), context.max_workers)
        parked = _POOL_CACHE.pop(key, None)
        if parked is not None:
            telemetry.count("exec.pool_reuse")
            self._pool = parked
        else:
            # A parked pool for a *different* run is dead weight — evict it
            # rather than hold idle workers for a netlist that may never
            # come back.
            _drain_pool_cache()
            self._pool = _WorkerPool(context.max_workers, payload)
        self._cache_key = key

    def submit_round(self, unit: WorkUnit) -> RoundHandle:
        assert self._pool is not None, "executor used before start()"
        return _FutureHandle(self._pool.submit(execute_unit, unit))

    def restart(self) -> None:
        if self._pool is not None:
            self._pool.restart()

    def worker_pids(self) -> Tuple[int, ...]:
        return self._pool.worker_pids() if self._pool is not None else ()

    def stop(self) -> None:
        pool, self._pool = self._pool, None
        key, self._cache_key = self._cache_key, None
        if pool is None or key is None:
            return
        evicted = _POOL_CACHE.pop(key, None)
        if evicted is not None and evicted is not pool:
            evicted.shutdown()
        _POOL_CACHE[key] = pool

    def release(self) -> None:
        pool, self._pool = self._pool, None
        self._cache_key = None
        if pool is not None:
            pool.shutdown()

"""The executor protocol: how the engine fans shard rounds out.

An :class:`Executor` is a *pluggable execution substrate* for the parallel
engine.  The engine hands it one :class:`WorkUnit` per pending shard per
fan-out round; the executor returns a :class:`RoundHandle` whose
``result(timeout)`` yields a :class:`RoundResult`.  Everything above the
boundary — retry waves, backoff, integrity checksums, chaos accounting,
checkpoint journaling, guard governance — lives in
:class:`repro.exec.driver.RoundDriver` and is therefore inherited by
*every* backend, present and future (a ``RemoteExecutor`` shipping units
over sockets slots in without touching the engine).

Four backends ship today (see ``docs/EXECUTORS.md``):

``serial``
    In-process, one shard at a time — the degradation target every other
    backend falls back to, and the cheapest choice for tiny kernels.
``thread``
    A thread pool with per-thread simulators — parallel timeout handling
    without process-pool spin-up/pickling tax (small kernels, see
    ``BENCH_engine.json``).
``process``
    A warm process pool — true CPU parallelism, crash isolation, worker
    RSS accounting.
``remote``
    Socket-sharded execution on peer worker agents (``python -m repro
    worker``), with node-level fault tolerance — heartbeats, re-dispatch,
    degradation to the local ``process`` backend.  See
    ``docs/DISTRIBUTED.md``.

Capability flags (:class:`ExecutorCapabilities`) tell the driver and the
guard what a backend can honour: whether hung rounds can be preempted
(``supports_timeout``), whether a worker crash is contained
(``isolated``), whether worker PIDs exist for RSS sampling
(``worker_pids``).  The guard's halve -> serial -> stop memory ladder is
applied uniformly: the "serial" rung stops *any* backend and continues
in-process, so governance is an executor-layer contract rather than
ProcessPool-specific code.

The timeout contract
--------------------

Who watches for a hung round depends on two flags, and exactly one party
may own the deadline:

* ``supports_timeout=True`` — ``RoundHandle.result(timeout)`` honours its
  argument, and the :class:`~repro.exec.driver.RoundDriver` arms its
  shared per-wave deadline from ``RetryPolicy.shard_timeout`` (``thread``,
  ``process``).
* ``supports_timeout=False, detects_hangs=True`` — the backend detects
  and recovers hangs *internally* (its own dispatch timeouts and
  heartbeats, fed the same ``RetryPolicy`` via :meth:`Executor.configure`)
  and its handles block until an outcome exists.  The driver must NOT arm
  a deadline on top: a driver deadline equal to the backend's internal
  one would race it and double-count every hang (``remote``).
* ``supports_timeout=False, detects_hangs=False`` — nobody can interrupt
  the round; ``shard_timeout`` is silently ignored and a delay simply
  runs to completion (``serial``: the round *is* the parent thread).
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import SimulationError

#: Environment variable naming the default backend for runs that do not
#: pin one in their :class:`~repro.exec.config.ExecutionPolicy` — the same
#: ambient-override idiom as ``$REPRO_CHAOS``.
EXECUTOR_ENV_VAR = "REPRO_ENGINE_EXECUTOR"

#: Fallback backend when neither the config nor the environment chooses.
DEFAULT_EXECUTOR = "process"


@dataclass(frozen=True)
class ExecutorCapabilities:
    """What an execution backend can honour.

    Attributes
    ----------
    parallel:
        Rounds of several shards make progress concurrently.
    isolated:
        A worker failure (crash, OOM kill) cannot corrupt the parent;
        non-isolated backends have hard chaos ``crash`` mapped to a clean
        in-process exception so the retry contract still holds.
    supports_timeout:
        ``RoundHandle.result(timeout)`` honours its timeout, so the
        driver may arm a shared deadline from
        ``RetryPolicy.shard_timeout``.  Backends where this is False must
        never be handed a driver deadline — see "The timeout contract" in
        the module docstring.
    detects_hangs:
        A hung round is still *detected and recovered* even though (or
        regardless of whether) the driver arms no deadline — either
        because ``supports_timeout`` makes the driver's deadline work, or
        because the backend watches its own dispatches internally
        (``remote``).  False only on ``serial``, where the round runs on
        the parent thread and nobody can interrupt it.
    worker_pids:
        The backend exposes worker process ids, so the memory watchdog
        can sample worker RSS alongside the parent's.
    remote:
        Work units leave this host (the ``remote`` backend).
    """

    parallel: bool
    isolated: bool
    supports_timeout: bool
    detects_hangs: bool = False
    worker_pids: bool = False
    remote: bool = False


@dataclass(frozen=True)
class ExecutionContext:
    """Everything a backend needs to build per-worker simulators.

    ``kernel`` is the *resolved* evaluation kernel ("packed" or "vec") —
    the engine resolves ``auto``/env/fallback once per run so every
    worker builds the same simulator type.

    ``cancel`` is the run's :class:`~repro.guard.cancel.CancelToken` (or
    None).  It is parent-side state — backends that pickle context fields
    for their workers must not ship it; the ``remote`` backend watches it
    to forward cancellation frames so SIGTERM on the coordinator drains
    peers cleanly.
    """

    netlist: Any
    batch_width: int
    max_workers: int
    telemetry_enabled: bool = False
    kernel: str = "packed"
    cancel: Optional[Any] = None


class ExecutorStartError(SimulationError):
    """A backend could not be brought up at all for this run.

    Raised by :meth:`Executor.start` when the backend's substrate is
    unavailable *before any work has run* — e.g. the ``remote`` backend
    finding zero reachable peers.  Distinct from mid-run failures (which
    degrade through the retry/fallback ladder instead of raising): a
    start failure means the operator pointed the run at a substrate that
    does not exist, and callers like the serve layer map it to a
    structured 503 with a ``retry_after`` hint.
    """


@dataclass
class NodeStats:
    """Per-peer accounting for a distributed run (``remote`` backend).

    One record per configured peer, plus a synthetic ``node == -1``
    record when the run degraded to the local ``process`` fallback.
    Surfaced on ``EngineResult.to_json()["engine"]["nodes"]`` and
    mirrored by the live ``exec.remote.*`` telemetry counters.
    """

    node: int
    address: str
    dispatched: int = 0
    redispatched: int = 0
    heartbeat_misses: int = 0
    alive: bool = True
    degraded_reason: Optional[str] = None

    def to_json(self) -> Dict[str, Any]:
        return {
            "node": self.node,
            "address": self.address,
            "dispatched": self.dispatched,
            "redispatched": self.redispatched,
            "heartbeat_misses": self.heartbeat_misses,
            "alive": self.alive,
            "degraded_reason": self.degraded_reason,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "NodeStats":
        return cls(
            node=int(payload["node"]),
            address=str(payload["address"]),
            dispatched=int(payload.get("dispatched", 0)),
            redispatched=int(payload.get("redispatched", 0)),
            heartbeat_misses=int(payload.get("heartbeat_misses", 0)),
            alive=bool(payload.get("alive", True)),
            degraded_reason=payload.get("degraded_reason"),
        )


@dataclass(frozen=True)
class WorkUnit:
    """One shard's work for one fan-out round.

    ``golden_batches`` is a list of ``(mask, golden values)`` pairs; the
    batch width is recovered from the mask.  ``attempt`` distinguishes
    retry waves so a deterministic chaos plan can let a retry succeed.
    The unit must stay picklable end to end — it is what a process (or,
    later, remote) backend ships to its workers.
    """

    shard_id: int
    faults: Tuple[Any, ...]
    golden_batches: Tuple[Tuple[int, Dict[int, int]], ...]
    pattern_base: int
    round_index: int
    drop_detected: bool
    attempt: int = 0
    chaos: Optional[Any] = None


@dataclass
class RoundResult:
    """What one executed :class:`WorkUnit` produced.

    ``checksum`` is taken *before* any chaos corruption inside the worker,
    so tampering is detectable by the driver; ``spans`` carries the spans
    recorded in an out-of-process worker since its last round (in-process
    backends record straight into the parent tracer and leave it empty).
    """

    shard_id: int
    detections: Dict[Any, int]
    survivors: List[Any]
    measurements: Dict[str, float]
    checksum: str
    spans: List[Any] = field(default_factory=list)


class RoundHandle(ABC):
    """A pending :class:`RoundResult` (future-shaped, minimal surface)."""

    @abstractmethod
    def result(self, timeout: Optional[float] = None) -> RoundResult:
        """The round's result; raises what the execution raised.

        ``timeout`` (seconds) applies only on backends whose capabilities
        claim ``supports_timeout``; others complete the work and return.
        On timeout the backend raises :class:`concurrent.futures.
        TimeoutError` and the driver treats the round as hung.
        """


class Executor(ABC):
    """One execution substrate for engine shard rounds.

    Life cycle: ``start(context)`` once per run, ``submit_round`` for
    every (shard, round, attempt), ``restart()`` whenever the driver
    declares the backend poisoned (dead/hung worker), ``stop()`` at run
    end.  ``stop`` must be idempotent — the guard's memory ladder may
    stop a backend mid-run and continue in-process.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    @property
    @abstractmethod
    def capabilities(self) -> ExecutorCapabilities:
        """The backend's capability flags (stable for its lifetime)."""

    def configure(self, retry: Any) -> None:
        """Receive the run's :class:`~repro.exec.driver.RetryPolicy`.

        Called by the driver before :meth:`start`.  Backends that own
        their hang detection (``supports_timeout=False,
        detects_hangs=True``) derive their internal dispatch timeout and
        backoff from the same policy the driver would have used, so one
        ``--shard-timeout`` governs every rung of the ladder.  Default:
        ignore it.
        """

    @abstractmethod
    def start(self, context: ExecutionContext) -> None:
        """Bind to one run's context; idempotent.

        Raises :class:`ExecutorStartError` when the substrate is
        unavailable before any work has run.
        """

    @abstractmethod
    def submit_round(self, unit: WorkUnit) -> RoundHandle:
        """Schedule one shard round; never blocks on the work itself."""

    def restart(self) -> None:
        """Recover from a poisoned backend (default: nothing to rebuild)."""

    def worker_pids(self) -> Tuple[int, ...]:
        """PIDs of live workers, for RSS sampling (default: none)."""
        return ()

    def node_stats(self) -> Tuple[NodeStats, ...]:
        """Per-peer accounting for distributed backends (default: none)."""
        return ()

    @abstractmethod
    def stop(self) -> None:
        """End-of-run teardown; idempotent, safe mid-run.

        A backend MAY park reusable resources (a warm worker pool) for the
        next run instead of freeing them — see :meth:`release` for the
        unconditional teardown.
        """

    def release(self) -> None:
        """Free every worker resource *now*; idempotent.

        The guard's memory ladder calls this on the "serial" rung: worker
        RSS must actually drop, so warm-pool parking is not allowed here.
        Default: same as :meth:`stop`.
        """
        self.stop()


# ------------------------------------------------------------------ registry

_REGISTRY: Dict[str, Callable[[], Executor]] = {}


def register_executor(name: str, factory: Callable[[], Executor]) -> None:
    """Register a backend factory under ``name`` (last write wins)."""
    _REGISTRY[name] = factory


def available_executors() -> Tuple[str, ...]:
    """Registered backend names, sorted (the CLI's ``--executor`` choices)."""
    return tuple(sorted(_REGISTRY))


def resolve_executor_name(name: Optional[str]) -> str:
    """Config name -> env (``$REPRO_ENGINE_EXECUTOR``) -> ``"process"``."""
    if name:
        return name
    ambient = os.environ.get(EXECUTOR_ENV_VAR, "").strip()
    return ambient or DEFAULT_EXECUTOR


def create_executor(name: Optional[str]) -> Executor:
    """Instantiate the backend named (or defaulted) by ``name``."""
    resolved = resolve_executor_name(name)
    factory = _REGISTRY.get(resolved)
    if factory is None:
        raise SimulationError(
            f"unknown executor {resolved!r} "
            f"(available: {', '.join(available_executors())})"
        )
    return factory()

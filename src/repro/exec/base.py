"""The executor protocol: how the engine fans shard rounds out.

An :class:`Executor` is a *pluggable execution substrate* for the parallel
engine.  The engine hands it one :class:`WorkUnit` per pending shard per
fan-out round; the executor returns a :class:`RoundHandle` whose
``result(timeout)`` yields a :class:`RoundResult`.  Everything above the
boundary — retry waves, backoff, integrity checksums, chaos accounting,
checkpoint journaling, guard governance — lives in
:class:`repro.exec.driver.RoundDriver` and is therefore inherited by
*every* backend, present and future (a ``RemoteExecutor`` shipping units
over sockets slots in without touching the engine).

Three backends ship today (see ``docs/EXECUTORS.md``):

``serial``
    In-process, one shard at a time — the degradation target every other
    backend falls back to, and the cheapest choice for tiny kernels.
``thread``
    A thread pool with per-thread simulators — parallel timeout handling
    without process-pool spin-up/pickling tax (small kernels, see
    ``BENCH_engine.json``).
``process``
    Today's warm process pool — true CPU parallelism, crash isolation,
    worker RSS accounting.

Capability flags (:class:`ExecutorCapabilities`) tell the driver and the
guard what a backend can honour: whether hung rounds can be preempted
(``supports_timeout``), whether a worker crash is contained
(``isolated``), whether worker PIDs exist for RSS sampling
(``worker_pids``).  The guard's halve -> serial -> stop memory ladder is
applied uniformly: the "serial" rung stops *any* backend and continues
in-process, so governance is an executor-layer contract rather than
ProcessPool-specific code.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import SimulationError

#: Environment variable naming the default backend for runs that do not
#: pin one in their :class:`~repro.exec.config.ExecutionPolicy` — the same
#: ambient-override idiom as ``$REPRO_CHAOS``.
EXECUTOR_ENV_VAR = "REPRO_ENGINE_EXECUTOR"

#: Fallback backend when neither the config nor the environment chooses.
DEFAULT_EXECUTOR = "process"


@dataclass(frozen=True)
class ExecutorCapabilities:
    """What an execution backend can honour.

    Attributes
    ----------
    parallel:
        Rounds of several shards make progress concurrently.
    isolated:
        A worker failure (crash, OOM kill) cannot corrupt the parent;
        non-isolated backends have hard chaos ``crash`` mapped to a clean
        in-process exception so the retry contract still holds.
    supports_timeout:
        A hung round can be preempted by ``RetryPolicy.shard_timeout``;
        without it a delay simply runs to completion.
    worker_pids:
        The backend exposes worker process ids, so the memory watchdog
        can sample worker RSS alongside the parent's.
    remote:
        Work units leave this host (reserved for a future
        ``RemoteExecutor``; no shipping backend sets it).
    """

    parallel: bool
    isolated: bool
    supports_timeout: bool
    worker_pids: bool = False
    remote: bool = False


@dataclass(frozen=True)
class ExecutionContext:
    """Everything a backend needs to build per-worker simulators.

    ``kernel`` is the *resolved* evaluation kernel ("packed" or "vec") —
    the engine resolves ``auto``/env/fallback once per run so every
    worker builds the same simulator type.
    """

    netlist: Any
    batch_width: int
    max_workers: int
    telemetry_enabled: bool = False
    kernel: str = "packed"


@dataclass(frozen=True)
class WorkUnit:
    """One shard's work for one fan-out round.

    ``golden_batches`` is a list of ``(mask, golden values)`` pairs; the
    batch width is recovered from the mask.  ``attempt`` distinguishes
    retry waves so a deterministic chaos plan can let a retry succeed.
    The unit must stay picklable end to end — it is what a process (or,
    later, remote) backend ships to its workers.
    """

    shard_id: int
    faults: Tuple[Any, ...]
    golden_batches: Tuple[Tuple[int, Dict[int, int]], ...]
    pattern_base: int
    round_index: int
    drop_detected: bool
    attempt: int = 0
    chaos: Optional[Any] = None


@dataclass
class RoundResult:
    """What one executed :class:`WorkUnit` produced.

    ``checksum`` is taken *before* any chaos corruption inside the worker,
    so tampering is detectable by the driver; ``spans`` carries the spans
    recorded in an out-of-process worker since its last round (in-process
    backends record straight into the parent tracer and leave it empty).
    """

    shard_id: int
    detections: Dict[Any, int]
    survivors: List[Any]
    measurements: Dict[str, float]
    checksum: str
    spans: List[Any] = field(default_factory=list)


class RoundHandle(ABC):
    """A pending :class:`RoundResult` (future-shaped, minimal surface)."""

    @abstractmethod
    def result(self, timeout: Optional[float] = None) -> RoundResult:
        """The round's result; raises what the execution raised.

        ``timeout`` (seconds) applies only on backends whose capabilities
        claim ``supports_timeout``; others complete the work and return.
        On timeout the backend raises :class:`concurrent.futures.
        TimeoutError` and the driver treats the round as hung.
        """


class Executor(ABC):
    """One execution substrate for engine shard rounds.

    Life cycle: ``start(context)`` once per run, ``submit_round`` for
    every (shard, round, attempt), ``restart()`` whenever the driver
    declares the backend poisoned (dead/hung worker), ``stop()`` at run
    end.  ``stop`` must be idempotent — the guard's memory ladder may
    stop a backend mid-run and continue in-process.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    @property
    @abstractmethod
    def capabilities(self) -> ExecutorCapabilities:
        """The backend's capability flags (stable for its lifetime)."""

    @abstractmethod
    def start(self, context: ExecutionContext) -> None:
        """Bind to one run's context; idempotent."""

    @abstractmethod
    def submit_round(self, unit: WorkUnit) -> RoundHandle:
        """Schedule one shard round; never blocks on the work itself."""

    def restart(self) -> None:
        """Recover from a poisoned backend (default: nothing to rebuild)."""

    def worker_pids(self) -> Tuple[int, ...]:
        """PIDs of live workers, for RSS sampling (default: none)."""
        return ()

    @abstractmethod
    def stop(self) -> None:
        """End-of-run teardown; idempotent, safe mid-run.

        A backend MAY park reusable resources (a warm worker pool) for the
        next run instead of freeing them — see :meth:`release` for the
        unconditional teardown.
        """

    def release(self) -> None:
        """Free every worker resource *now*; idempotent.

        The guard's memory ladder calls this on the "serial" rung: worker
        RSS must actually drop, so warm-pool parking is not allowed here.
        Default: same as :meth:`stop`.
        """
        self.stop()


# ------------------------------------------------------------------ registry

_REGISTRY: Dict[str, Callable[[], Executor]] = {}


def register_executor(name: str, factory: Callable[[], Executor]) -> None:
    """Register a backend factory under ``name`` (last write wins)."""
    _REGISTRY[name] = factory


def available_executors() -> Tuple[str, ...]:
    """Registered backend names, sorted (the CLI's ``--executor`` choices)."""
    return tuple(sorted(_REGISTRY))


def resolve_executor_name(name: Optional[str]) -> str:
    """Config name -> env (``$REPRO_ENGINE_EXECUTOR``) -> ``"process"``."""
    if name:
        return name
    ambient = os.environ.get(EXECUTOR_ENV_VAR, "").strip()
    return ambient or DEFAULT_EXECUTOR


def create_executor(name: Optional[str]) -> Executor:
    """Instantiate the backend named (or defaulted) by ``name``."""
    resolved = resolve_executor_name(name)
    factory = _REGISTRY.get(resolved)
    if factory is None:
        raise SimulationError(
            f"unknown executor {resolved!r} "
            f"(available: {', '.join(available_executors())})"
        )
    return factory()

"""The one shard-round primitive every execution backend runs.

Bit-identity across ``serial`` / ``thread`` / ``process`` backends (and the
engine's degraded in-process fallback) holds because they all execute the
*same* function, :func:`run_work_unit`, against per-worker
:class:`~repro.faultsim.simulator.FaultSimulator` instances.  This module
also hosts the process-backend worker entry points — they must live at
module level so :class:`concurrent.futures.ProcessPoolExecutor` can pickle
references to them.

Integrity: every round's result carries a checksum taken *before* any
chaos corruption is applied, so a tampered payload is detectable by the
:class:`~repro.exec.driver.RoundDriver`.  Chaos: the ``crash`` mode is
mapped to a clean :class:`~repro.engine.chaos.ChaosError` on in-process
backends (``os._exit`` would take the parent down with the "worker"),
which exercises the identical retry path.  Telemetry: out-of-process
workers drain their span buffer into the result for the parent to absorb;
in-process backends record straight into the parent tracer (draining
would steal the parent's own spans) and ship none.
"""

from __future__ import annotations

import hashlib
import pickle
import time
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro import telemetry
from repro.exec.base import RoundResult, WorkUnit
from repro.faultsim.faults import Fault
from repro.faultsim.simulator import FaultSimulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.chaos import FaultInjector


def make_simulator(netlist, batch_width: int, kernel: str) -> FaultSimulator:
    """Build the simulator for one resolved kernel name.

    The single factory every execution path uses — parent serial loop,
    per-worker builds in all three backends, the driver's degraded
    fallback — so a run's kernel choice is honoured uniformly.  The vec
    class is imported lazily: repro.exec must stay loadable without
    touching repro.engine (the engine imports this package), and the
    kernel was resolved by the engine only where vec is actually usable.
    """
    if kernel == "vec":
        from repro.engine.vec import VecFaultSimulator

        return VecFaultSimulator(netlist, batch_width)
    return FaultSimulator(netlist, batch_width)


def fault_key(fault: Fault) -> Tuple[int, int, int, int]:
    """A total-orderable identity tuple (stem faults carry None fields)."""
    return (
        fault.net,
        fault.stuck_at,
        -1 if fault.gate_index is None else fault.gate_index,
        -1 if fault.pin is None else fault.pin,
    )


def round_checksum(
    detections: Dict[Fault, int], survivors: List[Fault], patterns: int
) -> str:
    """Integrity digest over one shard round's result payload."""
    blob = repr((
        sorted(fault_key(f) + (index,) for f, index in detections.items()),
        [fault_key(f) for f in survivors],
        patterns,
    )).encode()
    return hashlib.sha256(blob).hexdigest()


def consume_batches(
    simulator: FaultSimulator,
    faults: List[Fault],
    golden_batches: List[Tuple[int, Dict[int, int]]],
    pattern_base: int,
    drop_detected: bool,
) -> Tuple[Dict[Fault, int], List[Fault], Dict[str, float]]:
    """Run one round of batches for one fault list on one simulator.

    The shared primitive behind every backend's shard round and the
    driver's degraded in-process fallback — one implementation is what
    keeps every execution path bit-identical.
    """
    start = time.perf_counter()
    events_before = simulator.events_propagated
    detections: Dict[Fault, int] = {}
    live = list(faults)
    base = pattern_base
    patterns = 0
    for mask, good in golden_batches:
        width = mask.bit_length()
        live = simulator.simulate_batch(
            live, good, mask, base, detections, drop_detected
        )
        base += width
        patterns += width
        if not live:
            break
    measurements = {
        "events": simulator.events_propagated - events_before,
        "patterns": patterns,
        "wall": time.perf_counter() - start,
    }
    return detections, live, measurements


def _apply_chaos(
    injector: Optional["FaultInjector"],
    shard_id: int,
    round_index: int,
    attempt: int,
    in_process: bool,
) -> bool:
    """Worker-side chaos, backend-aware.

    ``crash`` on an in-process backend becomes a raised
    :class:`~repro.engine.chaos.ChaosError`: there is no separate worker
    process to kill, and ``os._exit(13)`` would take the whole run down
    instead of exercising the retry path the mode exists to test.
    Process workers keep the real hard exit.  Returns True when the
    result payload should be corrupted.
    """
    if injector is None:
        return False
    if in_process and injector.mode == "crash":
        # Imported here, not at module level: repro.exec must be loadable
        # without touching repro.engine (the engine imports this package).
        from repro.engine.chaos import ChaosError

        if injector.fires(shard_id, round_index, attempt):
            raise ChaosError(
                f"chaos: injected crash in in-process shard {shard_id} "
                f"round {round_index}"
            )
        return False
    return injector.apply(shard_id, round_index, attempt)


def run_work_unit(
    simulator: FaultSimulator, unit: WorkUnit, in_process: bool
) -> RoundResult:
    """Simulate one :class:`WorkUnit` on one simulator.

    Returns the shard's new detections (absolute pattern indices), its
    surviving fault list, round measurements and an integrity checksum
    taken *before* any chaos corruption, so tampering is detectable by
    the driver.
    """
    corrupt = _apply_chaos(
        unit.chaos, unit.shard_id, unit.round_index, unit.attempt, in_process
    )
    with telemetry.span(
        "engine.shard_round",
        shard=unit.shard_id, round=unit.round_index, attempt=unit.attempt,
        n_faults=len(unit.faults),
    ):
        detections, live, measurements = consume_batches(
            simulator, list(unit.faults), list(unit.golden_batches),
            unit.pattern_base, unit.drop_detected,
        )
    checksum = round_checksum(detections, live, int(measurements["patterns"]))
    spans: List = []
    if not in_process:
        tele = telemetry.get_telemetry()
        spans = tele.tracer.drain() if tele.enabled else []
    if corrupt:
        if detections:
            first = next(iter(detections))
            detections[first] += 1
        elif live:
            detections[live[0]] = unit.pattern_base
        else:
            measurements["patterns"] = int(measurements["patterns"]) + 1
    return RoundResult(
        shard_id=unit.shard_id,
        detections=detections,
        survivors=live,
        measurements=measurements,
        checksum=checksum,
        spans=spans,
    )


# ------------------------------------------------- process-worker entry points

_WORKER_SIMULATOR: Optional[FaultSimulator] = None


def init_worker(payload: bytes) -> None:
    """Build this worker process's simulator from the pickled netlist."""
    global _WORKER_SIMULATOR
    netlist, batch_width, telemetry_on, kernel = pickle.loads(payload)
    # Forked workers inherit the parent's span buffer and metrics; wipe
    # them or every drain() would ship the parent's records back and the
    # join would duplicate them.  Spawn-started workers don't inherit the
    # parent's enable() call either way, so the init payload carries it.
    telemetry.get_telemetry().reset()
    if telemetry_on:
        telemetry.enable()
    _WORKER_SIMULATOR = make_simulator(netlist, batch_width, kernel)


def execute_unit(unit: WorkUnit) -> RoundResult:
    """Process-pool task: run one unit on this worker's simulator."""
    simulator = _WORKER_SIMULATOR
    assert simulator is not None, "worker used before initialization"
    return run_work_unit(simulator, unit, in_process=False)

"""The remote backend: socket-sharded execution that survives node death.

A :class:`RemoteExecutor` ships each shard round's
:class:`~repro.exec.base.WorkUnit` over a framed socket
(:mod:`repro.exec.wire`) to one of a set of peer worker agents
(:mod:`repro.exec.agent`, started with ``python -m repro worker``).  The
agents run the same :func:`~repro.exec.worker.run_work_unit` primitive as
every local backend, so remote results are bit-identical to serial by
construction; the driver's end-to-end round checksum still verifies every
payload on top of the wire-level digest.

Fault-tolerance ladder (each rung bounded, none raises mid-run):

1. **Re-dispatch.**  A dispatch that fails — connection lost, worker
   error mid-frame, dispatch timeout — requeues the unit with exponential
   backoff onto the surviving peers (at-least-once delivery is safe: a
   unit is a pure function of its inputs, so re-executing one a peer may
   already have finished changes nothing).  A node that stops answering
   fresh-connection heartbeats, or cannot be reconnected after a failure,
   is declared dead and receives no further work.
2. **Local fallback.**  A unit past its dispatch budget — or any unit
   once *every* peer is dead — runs on a lazily-started local ``process``
   backend, accounted as the synthetic node ``-1``.
3. **The driver's ladder.**  If even the fallback fails, the failure
   surfaces to the :class:`~repro.exec.driver.RoundDriver` exactly like a
   local worker crash: retry waves, ``restart()`` (which re-probes dead
   peers, so respawned agents rejoin), and ultimately the in-parent
   degraded rung.

Hang detection is *internal* (``supports_timeout=False,
detects_hangs=True`` — see the contract in :mod:`repro.exec.base`): every
dispatch carries a socket timeout derived from the run's
``RetryPolicy.shard_timeout`` (via :meth:`RemoteExecutor.configure`,
falling back to ``$REPRO_REMOTE_TIMEOUT``), so the driver must not arm
its own deadline on top.

Peers come from :func:`set_default_peers` (the CLI's ``--peers``) or
``$REPRO_PEERS`` (``host:port,host:port``).  ``start()`` raises
:class:`~repro.exec.base.ExecutorStartError` when no peer is reachable
within a short grace window — the serve layer maps that to a structured
503.  Governance: the run's :class:`~repro.guard.cancel.CancelToken`
(``ExecutionContext.cancel``) is watched and forwarded to every live peer
as a ``cancel`` frame, so SIGTERM on the coordinator drains peers cleanly.

Deterministic node-level chaos (``node_down:R`` / ``node_hang:R`` /
``net_drop:R``) is honoured at the dispatch sites below, which is what
makes this whole ladder provable in CI.  See ``docs/DISTRIBUTED.md``.
"""

from __future__ import annotations

import os
import pickle
import queue
import socket
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import replace
from typing import Any, List, Optional, Tuple

from repro import telemetry
from repro.errors import SimulationError
from repro.exec.base import (
    ExecutionContext,
    Executor,
    ExecutorCapabilities,
    ExecutorStartError,
    NodeStats,
    RoundHandle,
    RoundResult,
    WorkUnit,
)
from repro.exec.wire import FrameError, read_frame, send_frame

#: Environment variable naming the peer set (``host:port,host:port``).
PEERS_ENV_VAR = "REPRO_PEERS"

#: Per-dispatch timeout when the run's RetryPolicy carries none.
TIMEOUT_ENV_VAR = "REPRO_REMOTE_TIMEOUT"
DEFAULT_DISPATCH_TIMEOUT = 120.0

#: Heartbeat interval in seconds (<= 0 disables heartbeats).
HEARTBEAT_ENV_VAR = "REPRO_REMOTE_HEARTBEAT"
DEFAULT_HEARTBEAT_SECONDS = 1.0

#: Consecutive missed heartbeats before a node is declared dead.
HEARTBEAT_MISS_LIMIT = 3

#: How long ``start()`` keeps retrying unreachable peers before giving up.
START_GRACE_ENV_VAR = "REPRO_REMOTE_START_GRACE"
DEFAULT_START_GRACE_SECONDS = 5.0

_CONNECT_TIMEOUT = 2.0
_QUEUE_POLL_SECONDS = 0.2

_CAPABILITIES = ExecutorCapabilities(
    parallel=True,
    isolated=True,
    # The coordinator owns its deadlines (per-dispatch socket timeouts);
    # a driver deadline at the same shard_timeout would race them.
    supports_timeout=False,
    detects_hangs=True,
    remote=True,
)


# ------------------------------------------------------------------- peers

_DEFAULT_PEERS: Optional[Tuple[Tuple[str, int], ...]] = None


def parse_peers(spec: str) -> Tuple[Tuple[str, int], ...]:
    """``"host:port,host:port"`` -> ((host, port), ...)."""
    peers: List[Tuple[str, int]] = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        host, sep, port = token.rpartition(":")
        if not sep or not host:
            raise SimulationError(
                f"peer {token!r} must look like host:port"
            )
        try:
            peers.append((host, int(port)))
        except ValueError:
            raise SimulationError(f"peer port {port!r} is not an int")
    return tuple(peers)


def set_default_peers(peers: Optional[str]) -> None:
    """Pin the process-wide peer set (the CLI's ``--peers`` flag).

    ``None`` (or an empty string) clears the pin, falling back to
    ``$REPRO_PEERS``.
    """
    global _DEFAULT_PEERS
    _DEFAULT_PEERS = parse_peers(peers) if peers else None


def resolve_peers() -> Tuple[Tuple[str, int], ...]:
    """The effective peer set: ``set_default_peers`` -> ``$REPRO_PEERS``."""
    if _DEFAULT_PEERS is not None:
        return _DEFAULT_PEERS
    return parse_peers(os.environ.get(PEERS_ENV_VAR, ""))


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        raise SimulationError(f"${name} value {raw!r} is not a number")


# ----------------------------------------------------------------- plumbing


class _RemoteHandle(RoundHandle):
    """A round outcome settled by a dispatcher/transfer thread."""

    def __init__(self) -> None:
        self._done = threading.Event()
        self._result: Optional[RoundResult] = None
        self._error: Optional[BaseException] = None

    def fulfill(self, result: RoundResult) -> None:
        self._result = result
        self._done.set()

    def fail(self, error: BaseException) -> None:
        self._error = error
        self._done.set()

    def result(self, timeout: Optional[float] = None) -> RoundResult:
        if not self._done.wait(timeout):
            raise FutureTimeoutError()
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result


class _PendingUnit:
    """One unit awaiting (re-)dispatch, with its dispatch budget."""

    __slots__ = ("unit", "handle", "dispatches")

    def __init__(self, unit: WorkUnit, handle: _RemoteHandle):
        self.unit = unit
        self.handle = handle
        self.dispatches = 0


class _Node:
    """One peer: address, live work connection, accounting."""

    def __init__(self, index: int, host: str, port: int):
        self.index = index
        self.host = host
        self.port = port
        self.sock: Optional[socket.socket] = None
        self.lock = threading.Lock()
        self.misses = 0
        self.stats = NodeStats(node=index, address=f"{host}:{port}")
        self.thread: Optional[threading.Thread] = None

    @property
    def alive(self) -> bool:
        return self.stats.alive

    def close(self) -> None:
        sock, self.sock = self.sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass


class RemoteExecutor(Executor):
    """Socket-sharded execution over a registry of peer worker agents."""

    name = "remote"

    @property
    def capabilities(self) -> ExecutorCapabilities:
        return _CAPABILITIES

    def __init__(self) -> None:
        self._context: Optional[ExecutionContext] = None
        self._payload: Optional[bytes] = None
        self._nodes: List[_Node] = []
        self._queue: "queue.Queue[_PendingUnit]" = queue.Queue()
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._fallback: Optional[Executor] = None
        self._fallback_stats: Optional[NodeStats] = None
        self._heartbeat_thread: Optional[threading.Thread] = None
        self._cancel_thread: Optional[threading.Thread] = None
        self._dispatch_timeout = DEFAULT_DISPATCH_TIMEOUT
        self._backoff = 0.05
        self._max_dispatches = 3  # overwritten by configure()

    # ---------------------------------------------------------- configure

    def configure(self, retry: Any) -> None:
        # One --shard-timeout governs every rung: the driver would have
        # armed its deadline from the same policy on a local backend.
        if retry.shard_timeout is not None:
            self._dispatch_timeout = retry.shard_timeout
        else:
            self._dispatch_timeout = _env_float(
                TIMEOUT_ENV_VAR, DEFAULT_DISPATCH_TIMEOUT
            )
        self._backoff = retry.backoff
        self._max_dispatches = retry.max_retries + 1

    # -------------------------------------------------------------- start

    def start(self, context: ExecutionContext) -> None:
        if self._context is not None:
            return
        peers = resolve_peers()
        if not peers:
            raise ExecutorStartError(
                "remote executor has no peers: start worker agents with "
                "'python -m repro worker --listen HOST:PORT' and name them "
                f"via --peers or ${PEERS_ENV_VAR}"
            )
        self._context = context
        # Same 4-tuple the process backend ships its workers.
        self._payload = pickle.dumps(
            (context.netlist, context.batch_width,
             context.telemetry_enabled, context.kernel)
        )
        self._nodes = [
            _Node(index, host, port)
            for index, (host, port) in enumerate(peers)
        ]
        grace = _env_float(START_GRACE_ENV_VAR, DEFAULT_START_GRACE_SECONDS)
        deadline = time.monotonic() + grace
        while True:
            connected = 0
            for node in self._nodes:
                if node.sock is not None:
                    connected += 1
                    continue
                try:
                    node.sock = self._connect(node)
                    connected += 1
                except (OSError, FrameError):
                    continue
            if connected or time.monotonic() >= deadline:
                break
            time.sleep(0.1)
        if not connected:
            addresses = ", ".join(n.stats.address for n in self._nodes)
            self._context = None
            raise ExecutorStartError(
                f"remote executor could not reach any peer ({addresses}) "
                f"within {grace:.1f}s"
            )
        for node in self._nodes:
            if node.sock is None:
                node.stats.alive = False
                node.stats.degraded_reason = "unreachable at start"
            else:
                self._start_dispatcher(node)
        self._start_heartbeat()
        self._start_cancel_watcher()

    def _connect(self, node: _Node) -> socket.socket:
        """Fresh work connection: connect, init, await ready."""
        assert self._payload is not None
        sock = socket.create_connection(
            (node.host, node.port), timeout=_CONNECT_TIMEOUT
        )
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(self._dispatch_timeout)
            send_frame(sock, {"type": "init", "payload": self._payload})
            reply = read_frame(sock)
            if not isinstance(reply, dict) or reply.get("type") != "ready":
                raise FrameError(f"peer {node.stats.address} did not ready up")
        except BaseException:
            sock.close()
            raise
        return sock

    def _start_dispatcher(self, node: _Node) -> None:
        node.thread = threading.Thread(
            target=self._dispatch_loop, args=(node,),
            name=f"remote-dispatch-{node.index}", daemon=True,
        )
        node.thread.start()

    def _start_heartbeat(self) -> None:
        interval = _env_float(HEARTBEAT_ENV_VAR, DEFAULT_HEARTBEAT_SECONDS)
        if interval <= 0 or self._heartbeat_thread is not None:
            return
        self._heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop, args=(interval,),
            name="remote-heartbeat", daemon=True,
        )
        self._heartbeat_thread.start()

    def _start_cancel_watcher(self) -> None:
        cancel = self._context.cancel if self._context else None
        if cancel is None or self._cancel_thread is not None:
            return
        self._cancel_thread = threading.Thread(
            target=self._cancel_loop, args=(cancel,),
            name="remote-cancel", daemon=True,
        )
        self._cancel_thread.start()

    # ------------------------------------------------------------ dispatch

    def submit_round(self, unit: WorkUnit) -> RoundHandle:
        assert self._context is not None, "executor used before start()"
        handle = _RemoteHandle()
        item = _PendingUnit(unit, handle)
        if any(node.alive for node in self._nodes):
            self._queue.put(item)
        else:
            # The whole peer set is gone; don't even queue.
            self._submit_fallback(item)
        return handle

    def _dispatch_loop(self, node: _Node) -> None:
        while not self._stop.is_set() and node.alive:
            try:
                item = self._queue.get(timeout=_QUEUE_POLL_SECONDS)
            except queue.Empty:
                continue
            if item.handle._done.is_set():  # cancelled/settled elsewhere
                continue
            self._dispatch(node, item)

    def _dispatch(self, node: _Node, item: _PendingUnit) -> None:
        unit = item.unit
        chaos = unit.chaos
        action = None
        if chaos is not None:
            # Duck-typed: repro.exec must stay importable without
            # repro.engine, so the injector is never imported here.
            node_action = getattr(chaos, "node_action", None)
            if node_action is not None:
                action = node_action(node.index, unit.round_index, unit.attempt)
        first = item.dispatches == 0
        item.dispatches += 1
        node.stats.dispatched += 1
        telemetry.count("exec.remote.dispatched")
        if not first:
            node.stats.redispatched += 1
            telemetry.count("exec.remote.redispatched")
        try:
            with node.lock:
                if node.sock is None:
                    node.sock = self._connect(node)
                sock = node.sock
                # Sockets opened during start() predate configure() (the
                # driver is built after the executor starts), so the
                # effective per-dispatch deadline is applied here.
                sock.settimeout(self._dispatch_timeout)
                if action == "node_down":
                    # Kill the agent the way an OOM would, *then* try to
                    # use it — the very next read fails like a real death.
                    send_frame(sock, {"type": "exit"})
                elif action == "node_hang":
                    send_frame(
                        sock, {"type": "hang", "seconds": chaos.seconds}
                    )
                send_frame(sock, {"type": "run", "unit": unit})
                if action == "net_drop":
                    # Sever the link right after the unit left: the agent
                    # may still execute it, which is safe (idempotent).
                    node.close()
                    raise FrameError(
                        "chaos: net_drop severed the connection "
                        f"to node {node.index}"
                    )
                reply = read_frame(sock)
        except (FrameError, OSError) as error:
            timed_out = isinstance(error, socket.timeout)
            self._node_failed(node, item, error, timed_out=timed_out)
            return
        if isinstance(reply, dict) and reply.get("type") == "result":
            item.handle.fulfill(reply["result"])
        elif isinstance(reply, dict) and reply.get("type") == "error":
            # A clean worker-side failure (chaos `raise`, simulation
            # error): the node is healthy, so hand the failure to the
            # driver's retry ladder rather than redispatching blindly.
            item.handle.fail(SimulationError(
                f"node {node.index} ({node.stats.address}): "
                f"{reply.get('message')}"
            ))
        else:
            self._node_failed(
                node, item,
                FrameError(f"node {node.index} sent an unexpected reply"),
                timed_out=False,
            )

    def _node_failed(
        self,
        node: _Node,
        item: _PendingUnit,
        error: Exception,
        *,
        timed_out: bool,
    ) -> None:
        """One dispatch went wrong: probe the node, requeue the unit."""
        with node.lock:
            node.close()
            if node.alive:
                # A hung or partitioned node may still host a healthy
                # agent (it answers fresh connections even while one
                # thread is wedged); a dead process won't.  One probe
                # decides which.
                try:
                    node.sock = self._connect(node)
                    node.misses = 0
                except (OSError, FrameError):
                    self._declare_dead(
                        node,
                        "dispatch timed out and the peer could not be "
                        "reconnected" if timed_out else
                        f"connection lost and not re-established: {error}",
                    )
        self._requeue(item, error)

    def _declare_dead(self, node: _Node, reason: str) -> None:
        if not node.stats.alive:
            return
        node.stats.alive = False
        node.stats.degraded_reason = reason
        node.close()
        telemetry.count("exec.remote.node_deaths")
        if not any(n.alive for n in self._nodes):
            self._drain_queue_to_fallback()

    def _requeue(self, item: _PendingUnit, error: Exception) -> None:
        if item.dispatches >= self._max_dispatches:
            self._submit_fallback(item)
            return
        if not any(node.alive for node in self._nodes):
            self._submit_fallback(item)
            return
        # A fresh attempt lets a times-bounded chaos plan stand down,
        # mirroring the driver's retry-wave attempt bump.
        item.unit = replace(item.unit, attempt=item.unit.attempt + 1)
        if self._backoff > 0:
            time.sleep(self._backoff * (2 ** max(item.dispatches - 1, 0)))
        self._queue.put(item)

    def _drain_queue_to_fallback(self) -> None:
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if not item.handle._done.is_set():
                self._submit_fallback(item)

    # ------------------------------------------------------------ fallback

    def _fallback_executor(self) -> Executor:
        with self._lock:
            if self._fallback is None:
                from repro.exec.process import ProcessExecutor

                assert self._context is not None
                fallback = ProcessExecutor()
                fallback.start(self._context)
                self._fallback = fallback
                self._fallback_stats = NodeStats(
                    node=-1,
                    address="process://localhost",
                    degraded_reason=(
                        "peer set exhausted; degraded to the local "
                        "process backend"
                    ),
                )
                telemetry.count("exec.remote.degraded_local")
            return self._fallback

    def _submit_fallback(self, item: _PendingUnit) -> None:
        try:
            fallback = self._fallback_executor()
            inner = fallback.submit_round(item.unit)
        except Exception as error:  # noqa: BLE001 - surfaced via the handle
            item.handle.fail(error)
            return
        assert self._fallback_stats is not None
        stats = self._fallback_stats
        stats.dispatched += 1
        if item.dispatches > 0:
            stats.redispatched += 1
            telemetry.count("exec.remote.redispatched")
        telemetry.count("exec.remote.dispatched")

        def transfer() -> None:
            try:
                item.handle.fulfill(inner.result(self._dispatch_timeout))
            except BaseException as error:  # noqa: BLE001 - handed to driver
                item.handle.fail(error)

        threading.Thread(
            target=transfer, name="remote-fallback-transfer", daemon=True
        ).start()

    # ---------------------------------------------------------- heartbeats

    def _heartbeat_loop(self, interval: float) -> None:
        while not self._stop.wait(interval):
            for node in self._nodes:
                if not node.alive or self._stop.is_set():
                    continue
                if self._ping(node, timeout=max(interval, 0.5)):
                    node.misses = 0
                    continue
                node.misses += 1
                node.stats.heartbeat_misses += 1
                telemetry.count("exec.remote.heartbeat_misses")
                if node.misses >= HEARTBEAT_MISS_LIMIT:
                    self._declare_dead(
                        node,
                        f"missed {node.misses} consecutive heartbeats",
                    )

    def _ping(self, node: _Node, timeout: float) -> bool:
        # Fresh short-lived connection: the agent answers even while its
        # work connection is busy, so a miss means process death or a
        # total wedge, never mere load.
        try:
            with socket.create_connection(
                (node.host, node.port), timeout=timeout
            ) as sock:
                sock.settimeout(timeout)
                send_frame(sock, {"type": "ping"})
                reply = read_frame(sock)
                return isinstance(reply, dict) and reply.get("type") == "pong"
        except (OSError, FrameError):
            return False

    # ------------------------------------------------------------- cancel

    def _cancel_loop(self, cancel: Any) -> None:
        while not self._stop.is_set():
            if cancel.wait(_QUEUE_POLL_SECONDS):
                break
        # Forward even when teardown won the race to set _stop: a tripped
        # token means peers may still be holding queued units, and the
        # frame is harmless on an idle agent.
        if not cancel.cancelled:
            return
        for node in self._nodes:
            if not node.alive:
                continue
            try:
                with socket.create_connection(
                    (node.host, node.port), timeout=_CONNECT_TIMEOUT
                ) as sock:
                    sock.settimeout(_CONNECT_TIMEOUT)
                    send_frame(sock, {"type": "cancel"})
                    read_frame(sock)  # cancel-ack, best effort
                telemetry.count("exec.remote.cancel_forwarded")
            except (OSError, FrameError):
                continue

    # ------------------------------------------------------------ recovery

    def restart(self) -> None:
        """Driver-level rebuild: re-probe dead peers, heal the fallback.

        A respawned worker agent (``python -m repro worker --respawn``)
        rejoins the run here — the driver calls restart() before every
        retry wave that had failures.
        """
        for node in self._nodes:
            if node.alive:
                continue
            try:
                with node.lock:
                    node.sock = self._connect(node)
            except (OSError, FrameError):
                continue
            node.stats.alive = True
            node.stats.degraded_reason = None
            node.misses = 0
            self._start_dispatcher(node)
        if self._fallback is not None:
            self._fallback.restart()

    # ------------------------------------------------------------ teardown

    def node_stats(self) -> Tuple[NodeStats, ...]:
        stats = [node.stats for node in self._nodes]
        if self._fallback_stats is not None:
            stats.append(self._fallback_stats)
        return tuple(stats)

    def worker_pids(self) -> Tuple[int, ...]:
        # Remote PIDs are another host's business; only the local
        # fallback's workers count toward this coordinator's RSS.
        return self._fallback.worker_pids() if self._fallback else ()

    def stop(self) -> None:
        self._stop.set()
        for node in self._nodes:
            with node.lock:
                if node.sock is not None:
                    try:
                        send_frame(node.sock, {"type": "bye"})
                    except (OSError, FrameError):
                        pass
                node.close()
            if node.thread is not None:
                node.thread.join(timeout=1.0)
                node.thread = None
        for thread in (self._heartbeat_thread, self._cancel_thread):
            if thread is not None:
                thread.join(timeout=1.0)
        self._heartbeat_thread = None
        self._cancel_thread = None
        if self._fallback is not None:
            self._fallback.stop()

    def release(self) -> None:
        self.stop()
        if self._fallback is not None:
            self._fallback.release()
            self._fallback = None


__all__ = [
    "PEERS_ENV_VAR",
    "RemoteExecutor",
    "parse_peers",
    "resolve_peers",
    "set_default_peers",
]

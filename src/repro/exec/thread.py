"""The thread-pool backend: parallel scheduling without the process tax.

The simulator's packed-batch propagation is pure Python, so threads do not
buy CPU parallelism under the GIL — what they buy is everything *else*
the process backend charges for: no pool spin-up, no netlist pickling, no
golden-batch IPC, no per-round result marshalling.  For small kernels
those overheads dominate (see ``BENCH_engine.json``, where 2 process jobs
lose to 1), and the thread backend keeps the sharded execution shape —
including real ``shard_timeout`` preemption and the full retry contract —
at near-serial cost.

Each pool thread owns its own :class:`FaultSimulator` (thread-local), so
shard rounds never share mutable simulator state and results stay
bit-identical to the serial path.  ``restart()`` abandons the current
pool (a hung thread finishes harmlessly into a discarded future) and
swaps in a fresh one, mirroring the process backend's pool rebuild.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Optional

from repro.exec.base import (
    ExecutionContext,
    Executor,
    ExecutorCapabilities,
    RoundHandle,
    RoundResult,
    WorkUnit,
)
from repro.exec.worker import make_simulator, run_work_unit
from repro.faultsim.simulator import FaultSimulator

_CAPABILITIES = ExecutorCapabilities(
    parallel=True,
    isolated=False,
    # Future.result(timeout) genuinely preempts a hung round here, so the
    # driver's shared deadline is the (single) hang detector.
    supports_timeout=True,
    detects_hangs=True,
)


class _FutureHandle(RoundHandle):
    def __init__(self, future: "Future[RoundResult]"):
        self._future = future

    def result(self, timeout: Optional[float] = None) -> RoundResult:
        return self._future.result(timeout=timeout)


class ThreadExecutor(Executor):
    """A :class:`ThreadPoolExecutor` with one simulator per pool thread."""

    name = "thread"

    @property
    def capabilities(self) -> ExecutorCapabilities:
        return _CAPABILITIES

    def __init__(self) -> None:
        self._context: Optional[ExecutionContext] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._local = threading.local()
        self.restarts = 0

    def start(self, context: ExecutionContext) -> None:
        self._context = context
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=context.max_workers,
                thread_name_prefix="repro-exec",
            )

    def _simulator(self) -> FaultSimulator:
        context = self._context
        assert context is not None, "executor used before start()"
        simulator = getattr(self._local, "simulator", None)
        if simulator is None:
            simulator = make_simulator(
                context.netlist, context.batch_width, context.kernel
            )
            self._local.simulator = simulator
        return simulator

    def _run(self, unit: WorkUnit) -> RoundResult:
        return run_work_unit(self._simulator(), unit, in_process=True)

    def submit_round(self, unit: WorkUnit) -> RoundHandle:
        assert self._pool is not None, "executor used before start()"
        return _FutureHandle(self._pool.submit(self._run, unit))

    def restart(self) -> None:
        # A timed-out round leaves its thread running; abandon the pool
        # (the stray result lands in a discarded future, the thread-local
        # simulator dies with its thread) and build a fresh one.  A fresh
        # ``threading.local`` keeps new pool threads from ever aliasing an
        # abandoned thread's simulator.
        pool, self._pool = self._pool, None
        self._local = threading.local()
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
            self.restarts += 1
        context = self._context
        if context is not None:
            self._pool = ThreadPoolExecutor(
                max_workers=context.max_workers,
                thread_name_prefix="repro-exec",
            )

    def stop(self) -> None:
        pool, self._pool = self._pool, None
        self._local = threading.local()
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

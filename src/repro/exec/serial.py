"""The in-process serial backend: the degradation target.

Every other backend falls back to *this* execution shape when it runs out
of options (retry budget exhausted, memory ladder's "serial" rung), so it
is deliberately the simplest possible implementation: one simulator in
the parent process, work executed lazily inside ``handle.result()`` so
failures (including chaos) surface inside the driver's retry machinery
exactly like a worker failure would.

It is also the *fastest* backend for small kernels: no pool spin-up, no
golden-batch pickling, no IPC — see the committed ``BENCH_engine.json``
matrix where ``serial`` beats ``process`` on sub-millisecond rounds.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.exec.base import (
    ExecutionContext,
    Executor,
    ExecutorCapabilities,
    RoundHandle,
    RoundResult,
    WorkUnit,
)
from repro.exec.worker import make_simulator, run_work_unit
from repro.faultsim.simulator import FaultSimulator

_CAPABILITIES = ExecutorCapabilities(
    parallel=False,
    isolated=False,
    # The round runs on the parent thread: nobody can preempt OR detect a
    # hang, so the driver must not arm a deadline (it could never fire)
    # and ``shard_timeout`` is documented as inert here.
    supports_timeout=False,
    detects_hangs=False,
)


class _LazyHandle(RoundHandle):
    """Runs the work at ``result()`` time, inside the driver's try block."""

    def __init__(self, thunk: Callable[[], RoundResult]):
        self._thunk = thunk

    def result(self, timeout: Optional[float] = None) -> RoundResult:
        # ``timeout`` is ignored: capabilities say supports_timeout=False,
        # so the driver never passes one in anger.
        return self._thunk()


class SerialExecutor(Executor):
    """One in-parent simulator; shard rounds run one at a time."""

    name = "serial"

    @property
    def capabilities(self) -> ExecutorCapabilities:
        return _CAPABILITIES

    def __init__(self) -> None:
        self._context: Optional[ExecutionContext] = None
        self._simulator: Optional[FaultSimulator] = None

    def start(self, context: ExecutionContext) -> None:
        self._context = context

    def _get_simulator(self) -> FaultSimulator:
        assert self._context is not None, "executor used before start()"
        if self._simulator is None:
            self._simulator = make_simulator(
                self._context.netlist, self._context.batch_width,
                self._context.kernel,
            )
        return self._simulator

    def submit_round(self, unit: WorkUnit) -> RoundHandle:
        return _LazyHandle(
            lambda: run_work_unit(self._get_simulator(), unit, in_process=True)
        )

    def restart(self) -> None:
        # Nothing is poisoned by an in-process exception, but a fresh
        # simulator is the closest analogue to a pool rebuild and keeps
        # the recovery contract uniform.
        self._simulator = None

    def stop(self) -> None:
        self._simulator = None

"""Equivalence collapsing of stuck-at faults.

Classic structural equivalence rules (Abramovici/Breuer/Friedman, the
paper's reference [14]):

* For an AND/NAND gate, stuck-at-0 on any input pin is equivalent to the
  output stuck at the controlled value (0 for AND, 1 for NAND); dually for
  OR/NOR with stuck-at-1 inputs.
* For NOT/BUF, each input fault is equivalent to an output fault.
* XOR/XNOR gates admit no structural collapsing.

Collapsing only merges *equivalent* faults, so coverage percentages computed
on the collapsed set equal those on the full set.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.faultsim.faults import Fault, full_fault_universe
from repro.netlist.gates import CONTROLLING_VALUE, CONTROLLED_OUTPUT, GateType
from repro.netlist.netlist import Netlist


class _UnionFind:
    """Tiny union-find over hashable fault keys."""

    def __init__(self):
        self.parent: Dict[object, object] = {}

    def find(self, item):
        parent = self.parent.setdefault(item, item)
        if parent is item or parent == item:
            return item
        root = self.find(parent)
        self.parent[item] = root
        return root

    def union(self, a, b):
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[ra] = rb


def _key(fault: Fault) -> Tuple:
    return (fault.net, fault.stuck_at, fault.gate_index, fault.pin)


def collapse_faults(netlist: Netlist) -> Tuple[List[Fault], Dict[Fault, Fault]]:
    """Return (representative faults, fault -> representative map).

    The representative set is what the simulator works on; the map lets
    callers translate results back to the full universe.
    """
    universe = full_fault_universe(netlist)
    by_key: Dict[Tuple, Fault] = {_key(f): f for f in universe}
    uf = _UnionFind()

    fanout = netlist.fanout_map()
    po_sinks = {net: 1 for net in netlist.primary_outputs}

    def branch_or_stem(net: int, stuck_at: int, gate_index: int, pin: int) -> Tuple:
        """Key of the fault on this gate-input: branch if it exists, else stem."""
        sinks = len(fanout.get(net, ())) + po_sinks.get(net, 0)
        if sinks > 1:
            return (net, stuck_at, gate_index, pin)
        return (net, stuck_at, None, None)

    for gate_index, gate in enumerate(netlist.gates):
        gtype = gate.gtype
        out = gate.output
        if gtype in (GateType.NOT, GateType.BUF):
            invert = gtype is GateType.NOT
            for value in (0, 1):
                in_key = branch_or_stem(gate.inputs[0], value, gate_index, 0)
                out_value = (1 - value) if invert else value
                uf.union(in_key, (out, out_value, None, None))
        elif gtype in CONTROLLING_VALUE:
            control = CONTROLLING_VALUE[gtype]
            controlled = CONTROLLED_OUTPUT[gtype]
            out_key = (out, controlled, None, None)
            for pin, net in enumerate(gate.inputs):
                in_key = branch_or_stem(net, control, gate_index, pin)
                uf.union(in_key, out_key)
        # XOR/XNOR, CONST: nothing to merge.

    groups: Dict[object, List[Fault]] = {}
    for fault in universe:
        groups.setdefault(uf.find(_key(fault)), []).append(fault)

    representatives: List[Fault] = []
    mapping: Dict[Fault, Fault] = {}
    for members in groups.values():
        # Prefer a stem fault as the representative (cheaper to inject).
        rep = next((f for f in members if f.is_stem), members[0])
        representatives.append(rep)
        for fault in members:
            mapping[fault] = rep
    return representatives, mapping


def collapse_ratio(netlist: Netlist) -> float:
    """Collapsed/full fault-count ratio, a standard figure of merit."""
    reps, mapping = collapse_faults(netlist)
    return len(reps) / max(1, len(mapping))

"""Weighted random patterns guided by COP testability measures.

A classic BIST refinement of the paper's random-pattern setting (cousin of
its reference [18]'s weighted approach): instead of fair coin flips per
input, bias each input's 1-probability so the hardest faults — those with
the lowest COP-estimated detection probability — become more likely to be
excited.  The weight chosen per input maximises a greedy proxy: nudge each
input toward the value that raises the mean log-detection-probability of
the k hardest faults.

``WeightedPatternSource`` plugs into the fault simulator like any other
source; ``cop_weights`` derives the per-input probabilities.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Sequence

from repro.faultsim.collapse import collapse_faults
from repro.faultsim.cop import estimate_detection_probabilities
from repro.netlist.netlist import Netlist


class WeightedPatternSource:
    """Random patterns with a per-input 1-probability."""

    def __init__(self, weights: Sequence[float], seed: int = 1994):
        if not weights:
            raise ValueError("need at least one input weight")
        for weight in weights:
            if not 0.0 <= weight <= 1.0:
                raise ValueError(f"weight {weight} outside [0, 1]")
        self.weights = list(weights)
        self.n_inputs = len(weights)
        self.seed = seed

    def batches(self, batch_width: int) -> Iterator[List[int]]:
        rng = random.Random(self.seed)
        n = self.n_inputs
        while True:
            packed = [0] * n
            for offset in range(batch_width):
                bit = 1 << offset
                for position in range(n):
                    if rng.random() < self.weights[position]:
                        packed[position] |= bit
            yield packed


def cop_weights(
    netlist: Netlist,
    hardest_fraction: float = 0.1,
    strength: float = 0.3,
    floor: float = 0.1,
) -> List[float]:
    """Per-input 1-probabilities biased toward the hardest faults.

    For each of the hardest faults (lowest COP detection probability) we
    find the input assignment bias that helps excite it: inputs in the
    fault site's fanin get nudged toward the value that makes the site's
    excitation value more likely, estimated by re-running the COP
    probability propagation with that single input flipped to 0/1.
    ``strength`` bounds the nudge; ``floor`` keeps every probability inside
    [floor, 1-floor] so observability elsewhere never collapses.
    """
    faults, _ = collapse_faults(netlist)
    estimates = estimate_detection_probabilities(netlist, faults)
    estimates.sort(key=lambda e: e.detection_probability)
    cutoff = max(1, int(len(estimates) * hardest_fraction))
    hard = [e for e in estimates[:cutoff] if e.detection_probability > 0]

    pis = netlist.primary_inputs
    votes: Dict[int, float] = {net: 0.0 for net in pis}
    for estimate in hard:
        fault = estimate.fault
        want = 1 - fault.stuck_at  # the excitation value at the site
        support = netlist.support_of([fault.net])
        for net in support:
            # Which input value raises P(site = want)?  One-input
            # sensitivity: site probability with the input biased high
            # versus low.
            votes[net] += _input_sensitivity(netlist, net, fault.net, want)

    weights = []
    for net in pis:
        nudge = max(-1.0, min(1.0, votes[net] / max(1, len(hard))))
        weight = 0.5 + strength * nudge
        weights.append(min(1.0 - floor, max(floor, weight)))
    return weights


class MultiWeightedPatternSource:
    """Round-robin over several weight sets (one pattern from each in turn).

    The classic resolution of conflicting fault demands (Wunderlich-style
    multiple distributions): an AND-dominated cone wants mostly-ones
    patterns while an OR-dominated cone wants mostly-zeros; no single
    distribution serves both, but alternating between per-cluster
    distributions serves each at half rate — still exponentially better
    than fair coins for deep trees.
    """

    def __init__(self, weight_sets: Sequence[Sequence[float]], seed: int = 1994):
        if not weight_sets:
            raise ValueError("need at least one weight set")
        widths = {len(ws) for ws in weight_sets}
        if len(widths) != 1:
            raise ValueError("weight sets must share a width")
        self.weight_sets = [list(ws) for ws in weight_sets]
        self.n_inputs = widths.pop()
        self.seed = seed

    def batches(self, batch_width: int) -> Iterator[List[int]]:
        rng = random.Random(self.seed)
        n = self.n_inputs
        sets = self.weight_sets
        index = 0
        while True:
            packed = [0] * n
            for offset in range(batch_width):
                weights = sets[index % len(sets)]
                index += 1
                bit = 1 << offset
                for position in range(n):
                    if rng.random() < weights[position]:
                        packed[position] |= bit
            yield packed


def fault_weight_vector(
    netlist: Netlist,
    fault,
    strength: float = 0.4,
    floor: float = 0.05,
) -> List[float]:
    """The per-input distribution that best excites one fault.

    The *sign* of the sensitivity decides the direction of the bias; the
    magnitude is deliberately ignored (for a deep AND tree every single
    input's marginal slope is ~2^-(n-1), yet all of them should be pushed
    hard toward 1).
    """
    want = 1 - fault.stuck_at
    epsilon = 1e-12
    weights = []
    for pi in netlist.primary_inputs:
        slope = _input_sensitivity(netlist, pi, fault.net, want)
        if slope > epsilon:
            weight = 0.5 + strength
        elif slope < -epsilon:
            weight = 0.5 - strength
        else:
            weight = 0.5
        weights.append(min(1.0 - floor, max(floor, weight)))
    return weights


def cop_weight_sets(
    netlist: Netlist,
    n_sets: int = 2,
    hardest_fraction: float = 0.15,
    strength: float = 0.4,
) -> List[List[float]]:
    """Cluster the hardest faults' desired distributions into weight sets.

    Greedy clustering on the sign pattern of each fault's desired bias;
    cluster centres are the member-average distributions.  Falls back to a
    single fair set when nothing is biased.
    """
    faults, _ = collapse_faults(netlist)
    estimates = estimate_detection_probabilities(netlist, faults)
    estimates.sort(key=lambda e: e.detection_probability)
    cutoff = max(1, int(len(estimates) * hardest_fraction))
    hard = [e for e in estimates[:cutoff] if e.detection_probability > 0]
    if not hard:
        return [[0.5] * len(netlist.primary_inputs)]

    vectors = [
        fault_weight_vector(netlist, e.fault, strength=strength) for e in hard
    ]
    # Greedy clustering by bias-direction similarity.
    clusters: List[List[List[float]]] = []
    for vector in vectors:
        direction = [v - 0.5 for v in vector]
        placed = False
        for cluster in clusters:
            centre = cluster[0]
            dot = sum((c - 0.5) * d for c, d in zip(centre, direction))
            if dot >= 0:
                cluster.append(vector)
                placed = True
                break
        if not placed and len(clusters) < n_sets:
            clusters.append([vector])
            placed = True
        if not placed:
            clusters[0].append(vector)

    sets = []
    for cluster in clusters:
        width = len(cluster[0])
        sets.append([
            sum(vector[i] for vector in cluster) / len(cluster)
            for i in range(width)
        ])
    return sets


def _input_sensitivity(netlist: Netlist, pi: int, site: int, want: int) -> float:
    """d P(site == want) / d P(pi = 1), two-point estimate."""
    low = _site_probability(netlist, pi, 0.25, site)
    high = _site_probability(netlist, pi, 0.75, site)
    slope = (high - low) / 0.5
    return slope if want == 1 else -slope


def _site_probability(netlist: Netlist, pi: int, p: float, site: int) -> float:
    from repro.faultsim.cop import signal_probabilities

    # signal_probabilities takes a uniform pi probability; emulate a single
    # overridden input by a small wrapper propagation.
    probabilities = {net: 0.5 for net in netlist.primary_inputs}
    probabilities[pi] = p
    return _propagate(netlist, probabilities)[site]


def _propagate(netlist: Netlist, pi_probabilities: Dict[int, float]) -> Dict[int, float]:
    import math

    from repro.netlist.gates import GateType
    from repro.netlist.levelize import levelize

    prob = dict(pi_probabilities)
    for gate_index in levelize(netlist):
        gate = netlist.gates[gate_index]
        inputs = [prob[n] for n in gate.inputs]
        base = gate.gtype.base
        if base is GateType.AND:
            value = math.prod(inputs)
        elif base is GateType.OR:
            value = 1.0 - math.prod(1.0 - x for x in inputs)
        elif base is GateType.XOR:
            value = 0.0
            for x in inputs:
                value = value * (1.0 - x) + (1.0 - value) * x
        elif base is GateType.BUF:
            value = inputs[0]
        elif gate.gtype is GateType.CONST0:
            value = 0.0
        else:
            value = 1.0
        if gate.gtype.is_inverting:
            value = 1.0 - value
        prob[gate.output] = value
    return prob

"""Stuck-at fault model, collapsing, bit-parallel fault simulation, coverage."""

from repro.faultsim.faults import Fault, full_fault_universe
from repro.faultsim.collapse import collapse_faults, collapse_ratio
from repro.faultsim.patterns import (
    ExhaustivePatternSource,
    LFSRPatternSource,
    RandomPatternSource,
    SequencePatternSource,
)
from repro.faultsim.simulator import FaultSimResult, FaultSimulator
from repro.faultsim.cop import (
    FaultEstimate,
    estimate_detection_probabilities,
    observabilities,
    predicted_patterns_for_coverage,
    signal_probabilities,
)
from repro.faultsim.sequential import (
    SequentialFault,
    UnrolledCircuit,
    detects_sequence,
    minimum_detecting_length,
    unroll,
)
from repro.faultsim.weighted import (
    MultiWeightedPatternSource,
    WeightedPatternSource,
    cop_weight_sets,
    cop_weights,
    fault_weight_vector,
)
from repro.faultsim.coverage import (
    CoveragePoint,
    coverage_at,
    coverage_curve,
    patterns_to_targets,
    sample_curve,
)

__all__ = [
    "Fault",
    "full_fault_universe",
    "collapse_faults",
    "collapse_ratio",
    "RandomPatternSource",
    "ExhaustivePatternSource",
    "SequencePatternSource",
    "LFSRPatternSource",
    "FaultSimulator",
    "FaultSimResult",
    "CoveragePoint",
    "coverage_curve",
    "coverage_at",
    "sample_curve",
    "patterns_to_targets",
    "signal_probabilities",
    "observabilities",
    "estimate_detection_probabilities",
    "predicted_patterns_for_coverage",
    "FaultEstimate",
    "SequentialFault",
    "UnrolledCircuit",
    "unroll",
    "detects_sequence",
    "minimum_detecting_length",
    "WeightedPatternSource",
    "MultiWeightedPatternSource",
    "cop_weights",
    "cop_weight_sets",
    "fault_weight_vector",
]

"""Bit-parallel stuck-at fault simulator with fault dropping.

The engine is the classic levelized event-driven single-fault propagator, run
over *packed* batches (W patterns per pass, W configurable).  For each live
fault it injects the stuck value, propagates only through gates actually
reached by events (in topological order, so each gate is evaluated at most
once per fault per batch), and compares primary outputs.  Faults are dropped
at first detection and the pattern index of that first detection is recorded,
which is what the paper's "number of patterns to achieve X% fault coverage"
rows are computed from.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.faultsim.collapse import collapse_faults
from repro.faultsim.faults import Fault
from repro.faultsim.patterns import PatternSource
from repro.netlist.evaluate import Evaluator
from repro.netlist.gates import evaluate_gate
from repro.netlist.netlist import Netlist


@dataclass
class FaultSimResult:
    """Outcome of a fault-simulation run.

    ``first_detection`` maps each detected fault to the 0-based index of the
    first pattern that detects it.  ``n_patterns`` is how many patterns were
    simulated in total.
    """

    netlist: Netlist
    faults: List[Fault]
    first_detection: Dict[Fault, int] = field(default_factory=dict)
    n_patterns: int = 0
    undetectable: List[Fault] = field(default_factory=list)

    @property
    def n_faults(self) -> int:
        return len(self.faults)

    @property
    def detected(self) -> List[Fault]:
        return list(self.first_detection)

    @property
    def undetected(self) -> List[Fault]:
        return [f for f in self.faults if f not in self.first_detection]

    def coverage(self, after_patterns: Optional[int] = None, of_detectable: bool = False) -> float:
        """Fault coverage (fraction in [0,1]).

        With ``after_patterns`` given, counts only detections whose first
        pattern index is below it.  With ``of_detectable``, the denominator
        excludes faults proven undetectable (the paper reports coverage of
        detectable faults).
        """
        if after_patterns is None:
            hits = len(self.first_detection)
        else:
            hits = sum(1 for idx in self.first_detection.values() if idx < after_patterns)
        denom = len(self.faults)
        if of_detectable:
            denom -= len(self.undetectable)
        return hits / denom if denom else 1.0

    def detection_indices(self) -> List[int]:
        """Sorted first-detection pattern indices of all detected faults."""
        return sorted(self.first_detection.values())

    def patterns_for_coverage(self, target: float, of_detectable: bool = True) -> Optional[int]:
        """Fewest patterns reaching ``target`` coverage, or None if never.

        Returns the pattern *count* (index of the detecting pattern + 1).
        """
        denom = len(self.faults) - (len(self.undetectable) if of_detectable else 0)
        if denom <= 0:
            return 0
        needed = target * denom
        indices = self.detection_indices()
        # Smallest k with (#detections at index < k) >= needed.
        count = 0
        for position, index in enumerate(indices, start=1):
            count = position
            if count >= needed - 1e-9:
                return index + 1
        return None

    def merge_undetectable(self, faults: Iterable[Fault]) -> None:
        """Record faults proven redundant (e.g. by ATPG)."""
        known = set(self.undetectable)
        for fault in faults:
            if fault not in known:
                self.undetectable.append(fault)
                known.add(fault)


class FaultSimulator:
    """Fault simulator bound to one netlist.

    Parameters
    ----------
    netlist:
        The combinational circuit under test.
    batch_width:
        Patterns simulated per packed pass (default 256).
    """

    def __init__(self, netlist: Netlist, batch_width: int = 256):
        if batch_width < 1:
            raise SimulationError("batch width must be positive")
        self.netlist = netlist
        self.batch_width = batch_width
        self.evaluator = Evaluator(netlist)
        self._fanout: Dict[int, List[int]] = netlist.fanout_map()
        # Topological position of every gate, for event ordering.
        self._pos: Dict[int, int] = {g: i for i, g in enumerate(self.evaluator.order)}
        self._po_set = list(netlist.primary_outputs)

    # ------------------------------------------------------------- injection

    def _simulate_fault(self, fault: Fault, good: Dict[int, int], mask: int) -> int:
        """Return the packed detection mask of one fault for one batch."""
        gates = self.netlist.gates
        delta: Dict[int, int] = {}
        heap: List[Tuple[int, int]] = []
        scheduled = set()

        def schedule_fanout(net: int) -> None:
            for gate_index in self._fanout.get(net, ()):  # downstream readers
                if gate_index not in scheduled:
                    scheduled.add(gate_index)
                    heapq.heappush(heap, (self._pos[gate_index], gate_index))

        forced = 0 if fault.stuck_at == 0 else mask
        if fault.is_stem:
            if forced == good.get(fault.net, 0):
                return 0  # never excited in this batch
            delta[fault.net] = forced
            schedule_fanout(fault.net)
            faulty_gate = None
        else:
            faulty_gate = fault.gate_index
            gate = gates[faulty_gate]
            inputs = [
                forced if pin == fault.pin else good[n]
                for pin, n in enumerate(gate.inputs)
            ]
            value = evaluate_gate(gate.gtype, inputs, mask)
            if value == good[gate.output]:
                return 0
            delta[gate.output] = value
            schedule_fanout(gate.output)

        while heap:
            _, gate_index = heapq.heappop(heap)
            if gate_index == faulty_gate:
                continue  # its output was computed at injection time
            gate = gates[gate_index]
            inputs = [delta.get(n, good[n]) for n in gate.inputs]
            value = evaluate_gate(gate.gtype, inputs, mask)
            old = delta.get(gate.output, good[gate.output])
            if value != old:
                if value == good[gate.output]:
                    delta.pop(gate.output, None)
                else:
                    delta[gate.output] = value
                schedule_fanout(gate.output)

        detect = 0
        for po in self._po_set:
            if po in delta:
                detect |= delta[po] ^ good[po]
        return detect

    # ------------------------------------------------------------------ runs

    def run(
        self,
        source: PatternSource,
        max_patterns: int,
        faults: Optional[Sequence[Fault]] = None,
        stop_when_complete: bool = True,
        drop_detected: bool = True,
    ) -> FaultSimResult:
        """Simulate up to ``max_patterns`` patterns against the fault list.

        ``faults`` defaults to the equivalence-collapsed universe.  With
        ``stop_when_complete`` the run ends early once every fault has been
        detected (fault dropping makes the tail cheap anyway).
        ``drop_detected=False`` keeps detected faults in the simulated
        population — useful only for ablation studies of fault dropping.
        """
        if faults is None:
            faults, _ = collapse_faults(self.netlist)
        if source.n_inputs != len(self.netlist.primary_inputs):
            raise SimulationError(
                f"pattern source width {source.n_inputs} != circuit inputs "
                f"{len(self.netlist.primary_inputs)}"
            )
        result = FaultSimResult(self.netlist, list(faults))
        live: List[Fault] = list(faults)
        pattern_base = 0
        batches = source.batches(self.batch_width)
        pis = self.netlist.primary_inputs

        while pattern_base < max_patterns and live:
            width = min(self.batch_width, max_patterns - pattern_base)
            mask = (1 << width) - 1
            packed = next(batches)
            inputs = {net: packed[i] & mask for i, net in enumerate(pis)}
            good = self.evaluator.run(inputs, mask)

            survivors: List[Fault] = []
            for fault in live:
                detect = self._simulate_fault(fault, good, mask)
                if detect and fault not in result.first_detection:
                    first_bit = (detect & -detect).bit_length() - 1
                    result.first_detection[fault] = pattern_base + first_bit
                if not detect or not drop_detected:
                    survivors.append(fault)
            live = survivors
            pattern_base += width
            if stop_when_complete and len(result.first_detection) == len(faults):
                break

        result.n_patterns = pattern_base
        return result

    def detects(self, fault: Fault, pattern: Sequence[int]) -> bool:
        """Check whether one explicit pattern detects one fault.

        Reference-quality path used by tests and by ATPG verification.
        """
        mask = 1
        inputs = {
            net: (pattern[i] & 1)
            for i, net in enumerate(self.netlist.primary_inputs)
        }
        good = self.evaluator.run(inputs, mask)
        return bool(self._simulate_fault(fault, good, mask))

"""Bit-parallel stuck-at fault simulator with fault dropping.

The engine is the classic levelized event-driven single-fault propagator, run
over *packed* batches (W patterns per pass, W configurable).  For each live
fault it injects the stuck value, propagates only through gates actually
reached by events (in topological order, so each gate is evaluated at most
once per fault per batch), and compares primary outputs.  Faults are dropped
at first detection and the pattern index of that first detection is recorded,
which is what the paper's "number of patterns to achieve X% fault coverage"
rows are computed from.

Runs are orchestrated by :mod:`repro.engine`, which this module routes
through: :meth:`FaultSimulator.run` with ``jobs`` set fans the fault list
out over worker processes; the default stays serial and bit-identical to
the historical behaviour.  :class:`FaultSimResult` now lives in
:mod:`repro.results`; the import here is kept as a compatibility shim.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.faultsim.faults import Fault
from repro.faultsim.patterns import PatternSource
from repro.netlist.evaluate import Evaluator
from repro.netlist.gates import evaluate_gate
from repro.netlist.netlist import Netlist
from repro.results import FaultSimResult  # noqa: F401  (compatibility shim)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.config import RunConfig


class FaultSimulator:
    """Fault simulator bound to one netlist.

    Parameters
    ----------
    netlist:
        The combinational circuit under test.
    batch_width:
        Patterns simulated per packed pass (default 256).
    """

    #: Kernel name this simulator implements; the engine's kernel
    #: resolution respects an explicitly passed simulator's kernel (the
    #: numpy-vectorised :class:`repro.engine.vec.VecFaultSimulator`
    #: subclass overrides this with ``"vec"``).
    kernel = "packed"

    def __init__(self, netlist: Netlist, batch_width: int = 256):
        if batch_width < 1:
            raise SimulationError("batch width must be positive")
        self.netlist = netlist
        self.batch_width = batch_width
        self.evaluator = Evaluator(netlist)
        self._fanout: Dict[int, List[int]] = netlist.fanout_map()
        # Topological position of every gate, for event ordering.
        self._pos: Dict[int, int] = {g: i for i, g in enumerate(self.evaluator.order)}
        self._po_set = list(netlist.primary_outputs)
        #: Gate evaluations performed by fault propagation so far — the
        #: engine's per-shard instrumentation reads deltas of this counter.
        self.events_propagated = 0

    # ------------------------------------------------------------- injection

    def _simulate_fault(self, fault: Fault, good: Dict[int, int], mask: int) -> int:
        """Return the packed detection mask of one fault for one batch."""
        gates = self.netlist.gates
        delta: Dict[int, int] = {}
        heap: List[Tuple[int, int]] = []
        scheduled = set()

        def schedule_fanout(net: int) -> None:
            for gate_index in self._fanout.get(net, ()):  # downstream readers
                if gate_index not in scheduled:
                    scheduled.add(gate_index)
                    heapq.heappush(heap, (self._pos[gate_index], gate_index))

        forced = 0 if fault.stuck_at == 0 else mask
        if fault.is_stem:
            if forced == good.get(fault.net, 0):
                return 0  # never excited in this batch
            delta[fault.net] = forced
            schedule_fanout(fault.net)
            faulty_gate = None
        else:
            faulty_gate = fault.gate_index
            gate = gates[faulty_gate]
            inputs = [
                forced if pin == fault.pin else good[n]
                for pin, n in enumerate(gate.inputs)
            ]
            value = evaluate_gate(gate.gtype, inputs, mask)
            self.events_propagated += 1
            if value == good[gate.output]:
                return 0
            delta[gate.output] = value
            schedule_fanout(gate.output)

        while heap:
            _, gate_index = heapq.heappop(heap)
            if gate_index == faulty_gate:
                continue  # its output was computed at injection time
            gate = gates[gate_index]
            inputs = [delta.get(n, good[n]) for n in gate.inputs]
            value = evaluate_gate(gate.gtype, inputs, mask)
            self.events_propagated += 1
            old = delta.get(gate.output, good[gate.output])
            if value != old:
                if value == good[gate.output]:
                    delta.pop(gate.output, None)
                else:
                    delta[gate.output] = value
                schedule_fanout(gate.output)

        detect = 0
        for po in self._po_set:
            if po in delta:
                detect |= delta[po] ^ good[po]
        return detect

    # ------------------------------------------------------------------ runs

    def simulate_batch(
        self,
        live: Sequence[Fault],
        good: Dict[int, int],
        mask: int,
        pattern_base: int,
        detections: Dict[Fault, int],
        drop_detected: bool = True,
    ) -> List[Fault]:
        """Simulate one packed batch of patterns against the live faults.

        Records first detections (absolute pattern indices, offset by
        ``pattern_base``) into ``detections`` and returns the surviving
        fault list.  This is the primitive both the serial loop and the
        engine's shard workers drive; keeping it in one place is what makes
        ``jobs=N`` bit-identical to the serial path.
        """
        survivors: List[Fault] = []
        for fault in live:
            detect = self._simulate_fault(fault, good, mask)
            if detect and fault not in detections:
                first_bit = (detect & -detect).bit_length() - 1
                detections[fault] = pattern_base + first_bit
            if not detect or not drop_detected:
                survivors.append(fault)
        return survivors

    def run(
        self,
        source: PatternSource,
        max_patterns: Optional[int] = None,
        faults: Optional[Sequence[Fault]] = None,
        *,
        config: Optional["RunConfig"] = None,
        cache: Optional["object"] = None,
        **options,
    ) -> FaultSimResult:
        """Simulate up to ``max_patterns`` patterns against the fault list.

        ``faults`` defaults to the equivalence-collapsed universe.
        ``max_patterns`` (historically required) overrides
        ``config.max_patterns`` when given; with a full ``config`` it can
        simply be omitted.

        ``config`` is a :class:`repro.exec.RunConfig` — execution backend
        and shard count, retry/timeout policy, checkpointing, budget,
        cancellation and chaos all live there (the batch width is pinned
        to this simulator's own).  Results are bit-identical across
        backends and shard counts (see :func:`repro.engine.simulate`).
        ``cache`` optionally supplies a :class:`repro.engine.GoldenCache`
        so fault-free batch evaluations are shared across shards and
        repeated runs.

        The historical keyword surface (``jobs=``, ``stop_when_complete=``,
        ``checkpoint_dir=``, ``budget=``, ...) is still accepted through
        the engine's deprecation shim, which maps it onto a ``RunConfig``
        and warns once per process.
        """
        from repro import telemetry
        from repro.engine import simulate
        from repro.exec.config import runconfig_from_legacy

        if config is not None and options:
            raise SimulationError(
                "FaultSimulator.run() takes either config=RunConfig(...) or "
                "the legacy keyword options, not both (got config plus: "
                f"{', '.join(sorted(options))})"
            )
        if config is None:
            config = runconfig_from_legacy(options)
        if max_patterns is not None:
            config = config.replace(max_patterns=max_patterns)
        # The simulator owns its packed-batch geometry; a mismatched width
        # in the config would silently fork the golden-cache key space.
        if config.execution.batch_width != self.batch_width:
            config = config.with_execution(batch_width=self.batch_width)

        with telemetry.span(
            "faultsim.run",
            circuit=self.netlist.name,
            max_patterns=config.max_patterns,
            jobs=config.execution.effective_jobs,
        ):
            return simulate(
                self.netlist,
                faults,
                source,
                config=config,
                cache=cache,
                simulator=self,
            )

    def detects(self, fault: Fault, pattern: Sequence[int]) -> bool:
        """Check whether one explicit pattern detects one fault.

        Reference-quality path used by tests and by ATPG verification.
        """
        mask = 1
        inputs = {
            net: (pattern[i] & 1)
            for i, net in enumerate(self.netlist.primary_inputs)
        }
        good = self.evaluator.run(inputs, mask)
        return bool(self._simulate_fault(fault, good, mask))

"""COP testability measures and random-pattern test-length prediction.

The classic Controllability/Observability Program (Brglez): under uniform
random inputs, compute each net's 1-probability and each fault site's
observability assuming signal independence (reconvergent fanout makes the
estimates approximate — that inaccuracy is itself measured by the ablation
bench).  A stuck-at-v fault's single-pattern detection probability is then

    P(detect) = P(site = not v) * O(site)

and the expected random test length to a coverage target follows from the
geometric detection model.  This is the analytic counterpart of Table 2's
rows 5-7: the bench compares predicted and fault-simulated pattern counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faultsim.faults import Fault
from repro.netlist.gates import GateType
from repro.netlist.levelize import levelize
from repro.netlist.netlist import Netlist


def signal_probabilities(netlist: Netlist, pi_probability: float = 0.5) -> Dict[int, float]:
    """P(net = 1) per net under independent random inputs (COP C-measure)."""
    prob: Dict[int, float] = {
        net: pi_probability for net in netlist.primary_inputs
    }
    for gate_index in levelize(netlist):
        gate = netlist.gates[gate_index]
        inputs = [prob[n] for n in gate.inputs]
        base = gate.gtype.base
        if base is GateType.AND:
            value = math.prod(inputs)
        elif base is GateType.OR:
            value = 1.0 - math.prod(1.0 - p for p in inputs)
        elif base is GateType.XOR:
            value = 0.0
            for p in inputs:
                value = value * (1.0 - p) + (1.0 - value) * p
        elif base is GateType.BUF:
            value = inputs[0]
        elif gate.gtype is GateType.CONST0:
            value = 0.0
        else:  # CONST1
            value = 1.0
        if gate.gtype.is_inverting:
            value = 1.0 - value
        prob[gate.output] = value
    return prob


def observabilities(
    netlist: Netlist, probabilities: Optional[Dict[int, float]] = None
) -> Dict[int, float]:
    """P(a change at the net reaches some PO) per net (COP O-measure).

    Computed in reverse topological order; a stem's observability is the
    independence-model union of its branches'.
    """
    if probabilities is None:
        probabilities = signal_probabilities(netlist)
    # Start from POs, walk gates backwards.
    obs: Dict[int, float] = {}
    for net in netlist.primary_outputs:
        obs[net] = 1.0

    order = list(reversed(levelize(netlist)))
    fanout = netlist.fanout_map()

    def stem_observability(net: int) -> float:
        """Union over PO-sink and branch observabilities."""
        value = obs.get(net, 0.0) if net in netlist.primary_outputs else 0.0
        miss = 1.0 - value
        for gate_index in fanout.get(net, ()):
            miss *= 1.0 - _pin_obs.get((gate_index, net), 0.0)
        return 1.0 - miss

    _pin_obs: Dict[Tuple[int, int], float] = {}
    for gate_index in order:
        gate = netlist.gates[gate_index]
        out_obs = obs.get(gate.output)
        if out_obs is None:
            out_obs = stem_observability(gate.output)
            obs[gate.output] = out_obs
        base = gate.gtype.base
        for pin, net in enumerate(gate.inputs):
            if base is GateType.AND:
                through = math.prod(
                    probabilities[other]
                    for k, other in enumerate(gate.inputs) if k != pin
                )
            elif base is GateType.OR:
                through = math.prod(
                    1.0 - probabilities[other]
                    for k, other in enumerate(gate.inputs) if k != pin
                )
            elif base is GateType.XOR:
                through = 1.0  # an XOR input flip always flips the output
            else:  # BUF/NOT
                through = 1.0
            value = out_obs * through
            previous = _pin_obs.get((gate_index, net), 0.0)
            _pin_obs[(gate_index, net)] = max(previous, value)

    # Finalise stems that were never pulled (PIs and multi-fanout nets).
    result: Dict[int, float] = {}
    for net in range(netlist.n_nets):
        po_part = 1.0 if net in netlist.primary_outputs else 0.0
        miss = 1.0 - po_part
        for gate_index in fanout.get(net, ()):
            miss *= 1.0 - _pin_obs.get((gate_index, net), 0.0)
        result[net] = 1.0 - miss
    return result


@dataclass(frozen=True)
class FaultEstimate:
    """COP prediction for one fault."""

    fault: Fault
    detection_probability: float

    def expected_patterns(self) -> float:
        if self.detection_probability <= 0.0:
            return math.inf
        return 1.0 / self.detection_probability


def estimate_detection_probabilities(
    netlist: Netlist, faults: Sequence[Fault]
) -> List[FaultEstimate]:
    """COP detection-probability estimates for a fault list."""
    probabilities = signal_probabilities(netlist)
    obs = observabilities(netlist, probabilities)
    estimates: List[FaultEstimate] = []
    for fault in faults:
        p1 = probabilities[fault.net]
        excite = p1 if fault.stuck_at == 0 else 1.0 - p1
        observe = obs[fault.net]
        estimates.append(FaultEstimate(fault, excite * observe))
    return estimates


def predicted_patterns_for_coverage(
    estimates: Sequence[FaultEstimate], target: float
) -> Optional[int]:
    """Patterns N such that the expected detected fraction reaches target.

    Expected coverage after N patterns: mean over faults of 1-(1-p)^N.
    Solved by doubling + bisection; None when some faults have p = 0 and
    the target is unreachable.
    """
    probabilities = [e.detection_probability for e in estimates]
    if not probabilities:
        return 0

    def coverage(n: int) -> float:
        return sum(1.0 - (1.0 - p) ** n for p in probabilities) / len(probabilities)

    reachable = sum(1 for p in probabilities if p > 0) / len(probabilities)
    if reachable < target:
        return None
    low, high = 1, 1
    while coverage(high) < target:
        high *= 2
        if high > 1 << 40:
            return None
    while low < high:
        mid = (low + high) // 2
        if coverage(mid) >= target:
            high = mid
        else:
            low = mid + 1
    return low

"""Coverage curves and test-length accounting.

Turns fault-simulation results into the quantities Table 2 reports: the
number of patterns needed to reach a target fault coverage, and coverage as
a function of applied patterns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.faultsim.simulator import FaultSimResult


@dataclass(frozen=True)
class CoveragePoint:
    """One point on a coverage curve."""

    patterns: int
    coverage: float


def coverage_curve(result: FaultSimResult, of_detectable: bool = True) -> List[CoveragePoint]:
    """The full staircase curve: one point per new detection."""
    denom = result.n_faults - (len(result.undetectable) if of_detectable else 0)
    if denom <= 0:
        return [CoveragePoint(0, 1.0)]
    points: List[CoveragePoint] = []
    for count, index in enumerate(result.detection_indices(), start=1):
        points.append(CoveragePoint(index + 1, count / denom))
    return points


def coverage_at(result: FaultSimResult, patterns: int, of_detectable: bool = True) -> float:
    """Coverage after the first ``patterns`` patterns."""
    return result.coverage(after_patterns=patterns, of_detectable=of_detectable)


def sample_curve(
    result: FaultSimResult,
    checkpoints: Sequence[int],
    of_detectable: bool = True,
) -> List[CoveragePoint]:
    """Coverage at chosen pattern counts (for plotting/series output)."""
    return [
        CoveragePoint(n, coverage_at(result, n, of_detectable))
        for n in checkpoints
    ]


def patterns_to_targets(
    result: FaultSimResult,
    targets: Sequence[float],
    of_detectable: bool = True,
) -> List[Tuple[float, Optional[int]]]:
    """Pattern counts required for each coverage target (None if unreached)."""
    return [
        (target, result.patterns_for_coverage(target, of_detectable))
        for target in targets
    ]

"""Time-frame expansion and k-pattern detectability (Section 2).

The paper motivates balanced kernels by fault detectability: in an
unbalanced circuit some stuck-at faults need a *sequence* of k test vectors
(k-pattern detectable faults), while every detectable fault of a balanced
circuit is single-pattern detectable.  This module measures k empirically:
an RTL circuit is unrolled into k combinational time frames (registers
become frame-to-frame wires, initial state reset to 0), a permanent fault
is injected into *every* frame copy of its site, and detection is sought
over input sequences.

Only stem faults on block-boundary nets are analysed (one fault copy per
frame is forced with an evaluator override); that is exactly the
granularity of the paper's Figure-1 argument.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import SimulationError
from repro.netlist.evaluate import Evaluator
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist
from repro.rtl.circuit import RTLCircuit


@dataclass
class UnrolledCircuit:
    """A k-frame combinational expansion of an RTL circuit."""

    circuit: RTLCircuit
    frames: int
    netlist: Netlist
    # frame -> PI name -> bit nets (LSB first)
    frame_inputs: List[Dict[str, List[int]]]
    # frame -> PO name -> bit nets
    frame_outputs: List[Dict[str, List[int]]]
    # frame -> RTL net name -> bit nets (every resolved net, for fault sites)
    frame_nets: List[Dict[str, List[int]]]

    def fault_site_copies(self, net_name: str, bit: int) -> List[int]:
        """The unrolled nets carrying (net, bit) in every frame."""
        copies = []
        for frame in range(self.frames):
            nets = self.frame_nets[frame].get(net_name)
            if nets is not None:
                copies.append(nets[bit])
        if not copies:
            raise SimulationError(f"net {net_name} not present in any frame")
        return copies


def unroll(circuit: RTLCircuit, frames: int) -> UnrolledCircuit:
    """Expand ``circuit`` into ``frames`` combinational time frames.

    Frame 0's register outputs are the reset state (constant 0); frame t's
    register outputs are frame t-1's register inputs.  Every block must
    have a gate expander.
    """
    if frames < 1:
        raise SimulationError("need at least one time frame")
    circuit.validate()
    drivers = circuit.drivers()
    netlist = Netlist(f"{circuit.name}x{frames}")

    frame_inputs: List[Dict[str, List[int]]] = []
    frame_outputs: List[Dict[str, List[int]]] = []
    frame_nets: List[Dict[str, List[int]]] = []
    previous_register_in: Dict[str, List[int]] = {}

    for frame in range(frames):
        values: Dict[int, List[int]] = {}
        pi_map: Dict[str, List[int]] = {}
        for net_index in circuit.primary_inputs:
            net = circuit.nets[net_index]
            bits = netlist.new_inputs(net.width, prefix=f"f{frame}_{net.name}_")
            values[net_index] = bits
            pi_map[net.name] = bits

        # Register outputs: reset constants in frame 0, else last frame's
        # register input values.
        for register in circuit.registers.values():
            if frame == 0:
                bits = [
                    netlist.add_gate(
                        GateType.CONST0, [], name=f"f0_{register.name}_q{i}"
                    )
                    for i in range(register.width)
                ]
            else:
                bits = previous_register_in[register.name]
            values[register.output_net] = bits

        def resolve(net_index: int, frame=frame, values=values) -> List[int]:
            if net_index in values:
                return values[net_index]
            driver = drivers[net_index]
            if driver.kind != "block":
                raise SimulationError(
                    f"net {circuit.nets[net_index].name} has no frame value"
                )
            block = circuit.blocks[driver.name]
            if block.gate_expander is None:
                raise SimulationError(f"block {block.name} has no gate expander")
            inputs = [resolve(n) for n in block.input_nets]
            outputs = block.gate_expander(
                netlist, inputs, f"f{frame}_{block.name}"
            )
            for out_net, bits in zip(block.output_nets, outputs):
                values[out_net] = list(bits)
            return values[net_index]

        for net_index in range(len(circuit.nets)):
            resolve(net_index)

        po_map = {
            circuit.nets[n].name: values[n] for n in circuit.primary_outputs
        }
        for bits in po_map.values():
            for bit in bits:
                netlist.mark_output(bit)
        frame_inputs.append(pi_map)
        frame_outputs.append(po_map)
        frame_nets.append(
            {circuit.nets[i].name: values[i] for i in range(len(circuit.nets))}
        )
        previous_register_in = {
            register.name: values[register.input_net]
            for register in circuit.registers.values()
        }

    return UnrolledCircuit(
        circuit, frames, netlist, frame_inputs, frame_outputs, frame_nets
    )


@dataclass(frozen=True)
class SequentialFault:
    """A permanent stuck-at fault on one bit of an RTL net."""

    net_name: str
    bit: int
    stuck_at: int


def detects_sequence(
    unrolled: UnrolledCircuit,
    fault: SequentialFault,
    sequence: Sequence[Dict[str, int]],
) -> bool:
    """Does this input sequence detect the (permanent) fault?

    ``sequence`` supplies one PI-name -> word mapping per frame; detection
    means any PO bit differs in any frame.
    """
    if len(sequence) != unrolled.frames:
        raise SimulationError("sequence length must equal the frame count")
    evaluator = Evaluator(unrolled.netlist)
    assignment: Dict[int, int] = {}
    for frame, vector in enumerate(sequence):
        for name, bits in unrolled.frame_inputs[frame].items():
            word = vector[name]
            for position, net in enumerate(bits):
                assignment[net] = (word >> position) & 1
    good = evaluator.run(assignment, 1)
    copies = unrolled.fault_site_copies(fault.net_name, fault.bit)
    overrides = {net: fault.stuck_at for net in copies}
    bad = evaluator.run(assignment, 1, overrides=overrides)
    return any(
        good[po] != bad[po] for po in unrolled.netlist.primary_outputs
    )


def minimum_detecting_length(
    circuit: RTLCircuit,
    fault: SequentialFault,
    max_k: int = 4,
    exhaustive_width_limit: int = 12,
    random_trials: int = 2000,
    seed: int = 1994,
) -> Optional[int]:
    """Smallest k such that some k-vector sequence detects the fault.

    Exhaustive over all sequences when the total input-bit count across
    frames is small, random search otherwise.  Returns None if no sequence
    up to ``max_k`` detects the fault (it may still be detectable with a
    longer sequence, or be sequentially redundant).
    """
    pi_widths = {
        circuit.nets[n].name: circuit.nets[n].width
        for n in circuit.primary_inputs
    }
    total_width = sum(pi_widths.values())
    rng = random.Random(seed)
    for k in range(1, max_k + 1):
        unrolled = unroll(circuit, k)
        bits = total_width * k
        if bits <= exhaustive_width_limit:
            space = []
            for name, width in pi_widths.items():
                space.append([(name, v) for v in range(1 << width)])
            frame_choices = list(itertools.product(*space))
            for combo in itertools.product(frame_choices, repeat=k):
                sequence = [dict(frame) for frame in combo]
                if detects_sequence(unrolled, fault, sequence):
                    return k
        else:
            for _ in range(random_trials):
                sequence = [
                    {name: rng.getrandbits(width) for name, width in pi_widths.items()}
                    for _ in range(k)
                ]
                if detects_sequence(unrolled, fault, sequence):
                    return k
    return None

"""Single stuck-at fault model.

A fault site is either a *stem* (a net: PI or gate output, including its
fanout stem) or a *branch* (one specific gate input pin).  The universe of
faults for a netlist is every site stuck-at-0 and stuck-at-1; equivalence
collapsing (``repro.faultsim.collapse``) shrinks it before simulation, as the
paper's fault-coverage experiments assume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.netlist.netlist import Netlist


@dataclass(frozen=True)
class Fault:
    """One single stuck-at fault.

    Attributes
    ----------
    net:
        The net the fault lives on.
    stuck_at:
        0 or 1.
    gate_index:
        ``None`` for a stem fault; otherwise the index of the gate whose
        *input pin* is faulty.
    pin:
        Input-pin position within that gate (``None`` for stem faults).
    """

    net: int
    stuck_at: int
    gate_index: Optional[int] = None
    pin: Optional[int] = None

    @property
    def is_stem(self) -> bool:
        """True when the fault affects the whole net (stem fault)."""
        return self.gate_index is None

    def describe(self, netlist: Netlist) -> str:
        """Readable name, e.g. ``s_a_0(net add_fa3_s)``."""
        where = netlist.net_name(self.net)
        if not self.is_stem:
            gate = netlist.gates[self.gate_index]
            where = f"{where}->{gate.name or 'g%d' % self.gate_index}.{self.pin}"
        return f"s_a_{self.stuck_at}({where})"


def full_fault_universe(netlist: Netlist) -> List[Fault]:
    """All stuck-at faults of a netlist, before collapsing.

    Stem faults are placed on every PI and every gate output.  Branch faults
    are placed on every gate input pin whose driving net fans out to more
    than one pin (single-fanout branches are equivalent to their stem).
    """
    faults: List[Fault] = []
    for net in netlist.primary_inputs:
        faults.append(Fault(net, 0))
        faults.append(Fault(net, 1))
    for gate in netlist.gates:
        faults.append(Fault(gate.output, 0))
        faults.append(Fault(gate.output, 1))

    fanout = netlist.fanout_map()
    # A net also "fans out" to a primary output; count PO sinks too.
    po_sinks = {net: 1 for net in netlist.primary_outputs}
    for gate_index, gate in enumerate(netlist.gates):
        for pin, net in enumerate(gate.inputs):
            sinks = len(fanout.get(net, ())) + po_sinks.get(net, 0)
            if sinks > 1:
                faults.append(Fault(net, 0, gate_index, pin))
                faults.append(Fault(net, 1, gate_index, pin))
    return faults

"""Run manifests: one JSON document describing how a run was executed.

A :class:`RunManifest` snapshots everything needed to compare two runs
credibly — the configuration (plus a stable fingerprint of it), the code
version (``git describe``), the host, the collected spans, the metrics
snapshot, and the engine's per-shard stats.  The experiment harness and
the CLI write one next to their trace artifacts so a ``BENCH_*.json``
number is always attributable to an exact configuration and commit.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry import Telemetry

MANIFEST_KIND = "run-manifest"
MANIFEST_VERSION = 1


def config_fingerprint(config: Optional[Dict[str, Any]]) -> str:
    """A stable sha256 over a configuration dict (key order irrelevant)."""
    blob = json.dumps(config or {}, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


def git_describe(cwd: Optional[str] = None) -> Optional[str]:
    """``git describe --always --dirty``, or None outside a work tree."""
    try:
        process = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            capture_output=True, text=True, timeout=5.0, cwd=cwd,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if process.returncode != 0:
        return None
    described = process.stdout.strip()
    return described or None


def host_info() -> Dict[str, Any]:
    """JSON-safe facts about the machine the run executed on."""
    return {
        "hostname": platform.node(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "pid": os.getpid(),
    }


@dataclass
class RunManifest:
    """The one-document observability record of a run."""

    config: Dict[str, Any] = field(default_factory=dict)
    fingerprint: str = ""
    git: Optional[str] = None
    host: Dict[str, Any] = field(default_factory=dict)
    created: float = 0.0
    spans: List[Dict[str, Any]] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)
    shards: List[Dict[str, Any]] = field(default_factory=list)
    extra: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def collect(
        cls,
        config: Optional[Dict[str, Any]] = None,
        telemetry: Optional["Telemetry"] = None,
        shards: Optional[List[Dict[str, Any]]] = None,
        extra: Optional[Dict[str, Any]] = None,
        guard: Optional[Dict[str, Any]] = None,
    ) -> "RunManifest":
        """Assemble a manifest from the current process state.

        ``telemetry`` defaults to the global instance; its span buffer and
        metrics snapshot are copied, not drained.  ``guard`` embeds a
        :func:`repro.guard.guard_summary` document under ``extra["guard"]``
        so a partial (deadline-cut, cancelled, memory-limited) run is
        attributable from its manifest alone.
        """
        if telemetry is None:
            from repro.telemetry import get_telemetry

            telemetry = get_telemetry()
        config = dict(config or {})
        extra = dict(extra or {})
        if guard is not None:
            extra["guard"] = dict(guard)
        return cls(
            config=config,
            fingerprint=config_fingerprint(config),
            git=git_describe(),
            host=host_info(),
            created=time.time(),
            spans=[record.to_json() for record in telemetry.tracer.snapshot()],
            metrics=telemetry.metrics.snapshot(),
            shards=list(shards or []),
            extra=extra,
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": MANIFEST_KIND,
            "version": MANIFEST_VERSION,
            "created": self.created,
            "config": self.config,
            "config_fingerprint": self.fingerprint,
            "git": self.git,
            "host": self.host,
            "spans": self.spans,
            "metrics": self.metrics,
            "shards": self.shards,
            "extra": self.extra,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "RunManifest":
        if payload.get("kind") != MANIFEST_KIND:
            raise ValueError(f"not a {MANIFEST_KIND} document")
        return cls(
            config=dict(payload.get("config", {})),
            fingerprint=payload.get("config_fingerprint", ""),
            git=payload.get("git"),
            host=dict(payload.get("host", {})),
            created=float(payload.get("created", 0.0)),
            spans=list(payload.get("spans", [])),
            metrics=dict(payload.get("metrics", {})),
            shards=list(payload.get("shards", [])),
            extra=dict(payload.get("extra", {})),
        )

    def write(self, path) -> None:
        """Write the manifest as indented, key-sorted JSON."""
        with open(path, "w") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")

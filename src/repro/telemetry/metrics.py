"""Metrics registry: counters, gauges, and fixed-bucket histograms.

Instruments are created on first use (``registry.counter("engine.rounds")``)
and keep running totals for the process lifetime; :meth:`MetricsRegistry.
snapshot` renders everything into one JSON-safe dict that the exporters
(:mod:`repro.telemetry.export`) turn into Prometheus text or feed into a
:class:`~repro.telemetry.manifest.RunManifest`.

Histograms use *fixed* bucket boundaries chosen at creation — cumulative
``le`` semantics exactly as Prometheus defines them, so a value equal to a
boundary lands in that boundary's bucket and every observation lands in the
implicit ``+Inf`` bucket.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

#: Generic decade buckets, a sane default for counts and rates.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0,
)

#: Throughput buckets for ``patterns_per_second`` observations.
THROUGHPUT_BUCKETS: Tuple[float, ...] = (
    100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0, 10_000_000.0,
)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: Union[int, float]) -> None:
        self.value = value


class Histogram:
    """Observations over fixed bucket boundaries (Prometheus semantics)."""

    __slots__ = ("name", "help", "boundaries", "_counts", "count", "sum")

    def __init__(
        self,
        name: str,
        boundaries: Sequence[float] = DEFAULT_BUCKETS,
        help: str = "",
    ):
        ordered = tuple(float(b) for b in boundaries)
        if not ordered or list(ordered) != sorted(set(ordered)):
            raise ValueError(
                f"histogram {name}: boundaries must be strictly increasing"
            )
        self.name = name
        self.help = help
        self.boundaries = ordered
        self._counts = [0] * len(ordered)  # per-boundary, non-cumulative
        self.count = 0
        self.sum = 0.0

    def observe(self, value: Union[int, float]) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        # bisect_left: a value equal to a boundary belongs to that le bucket.
        index = bisect.bisect_left(self.boundaries, value)
        if index < len(self._counts):
            self._counts[index] += 1

    def cumulative_buckets(self) -> List[Tuple[Union[float, str], int]]:
        """``(le, cumulative count)`` pairs, ending with ``("+Inf", count)``."""
        pairs: List[Tuple[Union[float, str], int]] = []
        running = 0
        for boundary, count in zip(self.boundaries, self._counts):
            running += count
            pairs.append((boundary, running))
        pairs.append(("+Inf", self.count))
        return pairs


class MetricsRegistry:
    """Get-or-create instrument registry with a JSON-safe snapshot."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_free(self, name: str, kind: Dict[str, Any]) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not kind and name in family:
                raise ValueError(
                    f"metric {name!r} already registered as a different type"
                )

    def counter(self, name: str, help: str = "") -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                self._check_free(name, self._counters)
                instrument = self._counters[name] = Counter(name, help)
            return instrument

    def gauge(self, name: str, help: str = "") -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                self._check_free(name, self._gauges)
                instrument = self._gauges[name] = Gauge(name, help)
            return instrument

    def histogram(
        self,
        name: str,
        boundaries: Optional[Sequence[float]] = None,
        help: str = "",
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                self._check_free(name, self._histograms)
                instrument = self._histograms[name] = Histogram(
                    name, boundaries if boundaries is not None else DEFAULT_BUCKETS,
                    help,
                )
            return instrument

    def snapshot(self) -> Dict[str, Any]:
        """Every instrument's current state as one JSON-safe dict."""
        with self._lock:
            return {
                "counters": {
                    name: counter.value
                    for name, counter in sorted(self._counters.items())
                },
                "gauges": {
                    name: gauge.value
                    for name, gauge in sorted(self._gauges.items())
                },
                "histograms": {
                    name: {
                        "buckets": [
                            [le, count]
                            for le, count in histogram.cumulative_buckets()
                        ],
                        "sum": histogram.sum,
                        "count": histogram.count,
                    }
                    for name, histogram in sorted(self._histograms.items())
                },
            }

    def help_texts(self) -> Dict[str, str]:
        """Metric name -> help string, for the Prometheus exporter."""
        with self._lock:
            texts: Dict[str, str] = {}
            for family in (self._counters, self._gauges, self._histograms):
                for name, instrument in family.items():
                    if instrument.help:
                        texts[name] = instrument.help
            return texts

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

"""Zero-dependency tracer: nested spans over monotonic clocks.

A :class:`Tracer` records :class:`SpanRecord` entries into a per-process
buffer.  Spans nest through a thread-local stack (each record carries its
parent's id), are timed with :func:`time.perf_counter` (monotonic), and
are timestamped against a wall-clock anchor captured once per tracer so
merged buffers from different processes line up on one timeline.

The disabled path is a single ``enabled`` check returning one shared
no-op span object — no allocation, no clock read, no lock — so leaving
instrumentation compiled into hot paths costs (almost) nothing.  Worker
processes :meth:`drain` their buffer at the end of each shard round and
the parent :meth:`absorb`\\ s the records at shard join; records are plain
picklable dataclasses for exactly that trip.
"""

from __future__ import annotations

import functools
import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

#: Buffer bound: past it new spans are dropped (and counted), never grown —
#: a runaway loop must not turn observability into an OOM.
MAX_RECORDS = 200_000


@dataclass
class SpanRecord:
    """One finished span: what ran, when, for how long, under what."""

    span_id: int
    parent_id: Optional[int]
    name: str
    ts: float                 #: wall-anchored start time (seconds, absolute)
    duration: float           #: monotonic duration (seconds)
    pid: int
    tid: int
    attributes: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "ts": self.ts,
            "duration": self.duration,
            "pid": self.pid,
            "tid": self.tid,
            "attributes": dict(self.attributes),
        }


class _NoopSpan:
    """The shared span returned while tracing is disabled.

    Stateless, so one instance serves every call site, arbitrarily nested.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def set_attribute(self, key: str, value: Any) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class _ActiveSpan:
    """A live span: context manager pushing/popping the nesting stack."""

    __slots__ = ("_tracer", "name", "attributes", "span_id", "_parent_id",
                 "_start_perf", "_ts")

    def __init__(self, tracer: "Tracer", name: str, attributes: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attributes = attributes
        self.span_id = next(tracer._ids)
        self._parent_id: Optional[int] = None
        self._start_perf = 0.0
        self._ts = 0.0

    def __enter__(self) -> "_ActiveSpan":
        stack = self._tracer._stack()
        self._parent_id = stack[-1] if stack else None
        stack.append(self.span_id)
        self._ts = self._tracer._now()
        self._start_perf = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        duration = time.perf_counter() - self._start_perf
        stack = self._tracer._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        self._tracer._record(SpanRecord(
            span_id=self.span_id,
            parent_id=self._parent_id,
            name=self.name,
            ts=self._ts,
            duration=duration,
            pid=os.getpid(),
            tid=threading.get_ident(),
            attributes=self.attributes,
        ))

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value


class Tracer:
    """Per-process span buffer with a single-flag disabled fast path."""

    def __init__(self, max_records: int = MAX_RECORDS):
        self.enabled = False
        self.max_records = max_records
        self.dropped = 0  #: spans discarded once the buffer bound was hit
        self._records: List[SpanRecord] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)
        # Wall anchor + monotonic origin: ts = anchor + (perf - origin), so
        # timestamps are comparable across processes (CLOCK_MONOTONIC is
        # system-wide on Linux; forked children share the anchor exactly).
        self._origin_wall = time.time()
        self._origin_perf = time.perf_counter()

    # ------------------------------------------------------------- internals

    def _now(self) -> float:
        return self._origin_wall + (time.perf_counter() - self._origin_perf)

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            if len(self._records) >= self.max_records:
                self.dropped += 1
                return
            self._records.append(record)

    # ----------------------------------------------------------- public API

    def span(self, name: str, **attributes: Any):
        """A context manager timing one named span (no-op when disabled)."""
        if not self.enabled:
            return NOOP_SPAN
        return _ActiveSpan(self, name, attributes)

    def snapshot(self) -> List[SpanRecord]:
        """A copy of every buffered record (oldest first)."""
        with self._lock:
            return list(self._records)

    def drain(self) -> List[SpanRecord]:
        """Return and clear the buffer — the worker-side half of a merge."""
        with self._lock:
            records, self._records = self._records, []
        return records

    def absorb(self, records: List[SpanRecord]) -> None:
        """Merge records drained from another process's tracer."""
        with self._lock:
            room = self.max_records - len(self._records)
            if room < len(records):
                self.dropped += len(records) - max(room, 0)
                records = records[: max(room, 0)]
            self._records.extend(records)

    def reset(self) -> None:
        with self._lock:
            self._records.clear()
            self.dropped = 0


def traced(name: Optional[str] = None, **attributes: Any) -> Callable:
    """Decorator form of :meth:`Tracer.span` against the global tracer.

    ``@traced()`` spans the wrapped callable under its qualified name;
    ``@traced("custom.name", key=value)`` overrides name and attributes.
    """

    def decorate(func: Callable) -> Callable:
        label = name if name is not None else func.__qualname__

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any):
            from repro.telemetry import get_telemetry

            tracer = get_telemetry().tracer
            if not tracer.enabled:
                return func(*args, **kwargs)
            with tracer.span(label, **attributes):
                return func(*args, **kwargs)

        return wrapper

    return decorate

"""Exporters: Chrome ``trace_event`` JSON and Prometheus text format.

* :func:`to_chrome_trace` renders span records as complete (``"ph": "X"``)
  trace events — the object form with a ``traceEvents`` list, loadable
  directly in ``chrome://tracing`` and Perfetto.  Extra run context (the
  manifest minus its span list) rides along under ``otherData``, which
  both viewers ignore.
* :func:`to_prometheus_text` renders a :meth:`~repro.telemetry.metrics.
  MetricsRegistry.snapshot` in the Prometheus exposition format (names
  sanitized, HELP/label escaping per spec, histograms with cumulative
  ``le`` buckets plus ``_sum``/``_count``).

Both directions ship with validators (:func:`validate_chrome_trace`,
:func:`parse_prometheus_text`) used by ``python -m repro telemetry view``
and the CI telemetry job, so a malformed artifact fails loudly instead of
silently producing an unloadable file.
"""

from __future__ import annotations

import json
import re
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Union

from repro.telemetry.trace import SpanRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry import Telemetry
    from repro.telemetry.manifest import RunManifest
    from repro.telemetry.metrics import MetricsRegistry

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"          # metric name
    r"(\{[^}]*\})?"                          # optional label set
    r"\s+"
    r"(-?[0-9][0-9eE.+-]*|NaN|[+-]?Inf)$"    # value
)


# ------------------------------------------------------------ chrome trace

def to_chrome_trace(
    spans: Sequence[SpanRecord],
    other_data: Optional[Dict[str, Any]] = None,
    process_name: str = "repro",
) -> Dict[str, Any]:
    """Span records -> the Chrome ``trace_event`` object format.

    Timestamps are rebased to the earliest span (``ts`` is microseconds
    from the start of the trace) so viewers open at t=0 instead of the
    Unix epoch.
    """
    base = min((record.ts for record in spans), default=0.0)
    events: List[Dict[str, Any]] = []
    pids = sorted({record.pid for record in spans})
    for pid in pids:
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": process_name},
        })
    for record in spans:
        events.append({
            "name": record.name,
            "cat": "repro",
            "ph": "X",
            "ts": (record.ts - base) * 1e6,
            "dur": record.duration * 1e6,
            "pid": record.pid,
            "tid": record.tid,
            "args": {
                "span_id": record.span_id,
                "parent_id": record.parent_id,
                **record.attributes,
            },
        })
    payload: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if other_data:
        payload["otherData"] = other_data
    return payload


def validate_chrome_trace(payload: Any) -> List[str]:
    """Structural errors in a Chrome trace object ([] when loadable)."""
    errors: List[str] = []
    if not isinstance(payload, dict):
        return ["top level is not an object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if not isinstance(phase, str) or not phase:
            errors.append(f"{where}: missing ph")
            continue
        if not isinstance(event.get("name"), str):
            errors.append(f"{where}: missing name")
        if phase == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    errors.append(f"{where}: {key} must be a number >= 0")
            for key in ("pid", "tid"):
                if not isinstance(event.get(key), int):
                    errors.append(f"{where}: {key} must be an integer")
    return errors


def write_trace(
    path,
    telemetry: Optional["Telemetry"] = None,
    manifest: Optional["RunManifest"] = None,
) -> Dict[str, Any]:
    """Write the global (or given) tracer's spans as a Chrome trace file.

    With a ``manifest``, its non-span content is embedded under
    ``otherData.manifest`` so one file carries the full run context.
    Returns the written payload.
    """
    if telemetry is None:
        from repro.telemetry import get_telemetry

        telemetry = get_telemetry()
    other: Optional[Dict[str, Any]] = None
    if manifest is not None:
        summary = manifest.to_json()
        summary.pop("spans", None)  # the events ARE the spans
        other = {"manifest": summary}
    payload = to_chrome_trace(telemetry.tracer.snapshot(), other_data=other)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return payload


# -------------------------------------------------------------- prometheus

def prometheus_name(name: str) -> str:
    """Sanitize a dotted metric name into the Prometheus charset."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not _NAME_RE.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def escape_help(text: str) -> str:
    """HELP-line escaping: backslash and newline."""
    return text.replace("\\", r"\\").replace("\n", r"\n")


def escape_label_value(text: str) -> str:
    """Label-value escaping: backslash, double quote, newline."""
    return (
        text.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")
    )


def _format_value(value: Union[int, float]) -> str:
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _format_le(le: Union[float, str]) -> str:
    if isinstance(le, str):
        return le
    as_float = float(le)
    if as_float == int(as_float):
        return str(int(as_float))
    return repr(as_float)


def to_prometheus_text(
    snapshot: Dict[str, Any],
    help_texts: Optional[Dict[str, str]] = None,
) -> str:
    """A metrics snapshot in the Prometheus text exposition format."""
    help_texts = help_texts or {}
    lines: List[str] = []

    def emit_header(raw_name: str, name: str, kind: str) -> None:
        help_text = help_texts.get(raw_name)
        if help_text:
            lines.append(f"# HELP {name} {escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")

    for raw_name, value in snapshot.get("counters", {}).items():
        name = prometheus_name(raw_name)
        emit_header(raw_name, name, "counter")
        lines.append(f"{name} {_format_value(value)}")
    for raw_name, value in snapshot.get("gauges", {}).items():
        name = prometheus_name(raw_name)
        emit_header(raw_name, name, "gauge")
        lines.append(f"{name} {_format_value(value)}")
    for raw_name, data in snapshot.get("histograms", {}).items():
        name = prometheus_name(raw_name)
        emit_header(raw_name, name, "histogram")
        for le, count in data["buckets"]:
            label = escape_label_value(_format_le(le))
            lines.append(f'{name}_bucket{{le="{label}"}} {count}')
        lines.append(f"{name}_sum {_format_value(data['sum'])}")
        lines.append(f"{name}_count {data['count']}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> Dict[str, float]:
    """Parse exposition-format text back into ``{sample name: value}``.

    The sample name includes its label set verbatim (so histogram buckets
    stay distinct).  Raises :class:`ValueError` on any malformed line —
    this is the validator behind ``telemetry view`` and the CI check.
    """
    samples: Dict[str, float] = {}
    for line_number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("#"):
            parts = stripped.split(None, 2)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(
                    f"line {line_number}: malformed comment {line!r}"
                )
            continue
        match = _SAMPLE_RE.match(stripped)
        if match is None:
            raise ValueError(f"line {line_number}: malformed sample {line!r}")
        name, labels, value = match.groups()
        samples[name + (labels or "")] = float(value)
    if not samples:
        raise ValueError("no samples found")
    return samples


def metrics_text(telemetry: Optional["Telemetry"] = None) -> str:
    """The global (or given) registry rendered as Prometheus text.

    The single rendering path behind both :func:`write_metrics` (the
    ``--metrics-out`` CLI artifact) and the ``repro.serve`` ``/metrics``
    endpoint, so a scrape and a file artifact can never disagree on
    format.
    """
    if telemetry is None:
        from repro.telemetry import get_telemetry

        telemetry = get_telemetry()
    return to_prometheus_text(
        telemetry.metrics.snapshot(), telemetry.metrics.help_texts()
    )


def write_metrics(
    path,
    telemetry: Optional["Telemetry"] = None,
) -> str:
    """Write the global (or given) registry as a Prometheus text file."""
    text = metrics_text(telemetry)
    with open(path, "w") as handle:
        handle.write(text)
    return text

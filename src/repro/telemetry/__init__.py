"""repro.telemetry — tracing, metrics and run manifests for the engine.

One process-global :class:`Telemetry` instance (a :class:`~repro.telemetry.
trace.Tracer` plus a :class:`~repro.telemetry.metrics.MetricsRegistry`)
is shared by every instrumented layer — engine, golden cache, fault
simulator, BIST sessions, the experiment harness and the CLI.  It is
**off by default**: every helper below front-loads a single ``enabled``
check, so instrumented hot paths cost one attribute read and one branch
when telemetry is off (see the disabled-overhead smoke test).

Enable it explicitly::

    from repro import telemetry

    telemetry.enable()
    result = simulate(netlist, jobs=4)
    telemetry.export.write_trace("trace.json")      # chrome://tracing
    telemetry.export.write_metrics("metrics.prom")  # Prometheus text

or ambiently with ``REPRO_TELEMETRY=1`` (the CI equivalence jobs run this
way to prove tracing never perturbs results).  Worker processes buffer
their spans locally and the engine merges them at shard join, so one
trace shows the parent and every shard on a single timeline.

See ``docs/OBSERVABILITY.md`` for the full tour.
"""

from __future__ import annotations

import os
from typing import Any, Optional, Sequence, Union

from repro.telemetry import export  # noqa: F401  (re-exported surface)
from repro.telemetry.manifest import RunManifest, config_fingerprint, git_describe
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    THROUGHPUT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.trace import NOOP_SPAN, SpanRecord, Tracer, traced

#: Setting this environment variable to anything but ""/"0" enables the
#: global telemetry instance at import time (mirrors ``REPRO_CHAOS``).
TELEMETRY_ENV_VAR = "REPRO_TELEMETRY"


class Telemetry:
    """A tracer and a metrics registry behind one enabled flag."""

    def __init__(self):
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled

    def enable(self) -> None:
        self.tracer.enabled = True

    def disable(self) -> None:
        self.tracer.enabled = False

    def reset(self) -> None:
        """Clear every buffered span and registered instrument."""
        self.tracer.reset()
        self.metrics.reset()


_TELEMETRY = Telemetry()


def get_telemetry() -> Telemetry:
    """The process-global telemetry instance."""
    return _TELEMETRY


def enabled() -> bool:
    return _TELEMETRY.enabled


def enable() -> None:
    _TELEMETRY.enable()


def disable() -> None:
    _TELEMETRY.disable()


def reset() -> None:
    _TELEMETRY.reset()


# ------------------------------------------------------- hot-path helpers
#
# Call sites use these module-level functions; each is a single enabled
# check before any work, which is the whole disabled-mode overhead story.

def span(name: str, **attributes: Any):
    """Time a named span on the global tracer (shared no-op when off)."""
    tracer = _TELEMETRY.tracer
    if not tracer.enabled:
        return NOOP_SPAN
    return tracer.span(name, **attributes)


def count(name: str, amount: Union[int, float] = 1) -> None:
    """Increment a counter (no-op when disabled)."""
    if not _TELEMETRY.tracer.enabled:
        return
    _TELEMETRY.metrics.counter(name).inc(amount)


def gauge_set(name: str, value: Union[int, float]) -> None:
    """Set a gauge (no-op when disabled)."""
    if not _TELEMETRY.tracer.enabled:
        return
    _TELEMETRY.metrics.gauge(name).set(value)


def observe(
    name: str,
    value: Union[int, float],
    boundaries: Optional[Sequence[float]] = None,
) -> None:
    """Observe a histogram value (no-op when disabled)."""
    if not _TELEMETRY.tracer.enabled:
        return
    _TELEMETRY.metrics.histogram(name, boundaries).observe(value)


if os.environ.get(TELEMETRY_ENV_VAR, "") not in ("", "0"):
    _TELEMETRY.enable()


__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "RunManifest",
    "SpanRecord",
    "TELEMETRY_ENV_VAR",
    "THROUGHPUT_BUCKETS",
    "Telemetry",
    "Tracer",
    "config_fingerprint",
    "count",
    "disable",
    "enable",
    "enabled",
    "export",
    "gauge_set",
    "get_telemetry",
    "git_describe",
    "observe",
    "reset",
    "span",
    "traced",
]

"""Netlist design rules (``NL0xx``): structural sanity of gate-level netlists.

These mirror what :meth:`repro.netlist.Netlist.validate` enforces — plus
checks ``add_gate`` makes unconstructable through the API but which still
appear in hand-edited or deserialized netlists — and, unlike ``validate``,
report *every* violation with a machine-checkable witness instead of
raising on the first.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set

from repro.errors import NetlistError
from repro.lint.registry import Draft, rule
from repro.netlist.gates import validate_fanin
from repro.netlist.netlist import Netlist


def _gate_label(netlist: Netlist, index: int) -> str:
    gate = netlist.gates[index]
    return gate.name or f"{gate.gtype.value}#{index}"


def _gate_successors(netlist: Netlist) -> Dict[int, List[int]]:
    """Gate index -> indices of gates reading its output net."""
    fanout = netlist.fanout_map()
    return {
        index: fanout.get(gate.output, [])
        for index, gate in enumerate(netlist.gates)
    }


def _cyclic_sccs(successors: Dict[int, List[int]]) -> List[List[int]]:
    """Strongly connected components with a cycle (size > 1 or a self-loop)."""
    index_of: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    sccs: List[List[int]] = []
    counter = [0]

    for root in successors:
        if root in index_of:
            continue
        work = [(root, iter(successors[root]))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(successors[succ])))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: List[int] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or node in successors.get(node, []):
                    sccs.append(sorted(component))
    return sccs


def _one_cycle(successors: Dict[int, List[int]], component: List[int]) -> List[int]:
    """One concrete cycle inside a cyclic SCC, as an ordered gate list."""
    members = set(component)
    start = component[0]
    path = [start]
    on_path = {start}
    work = [(start, iter(successors[start]))]
    while work:
        node, it = work[-1]
        advanced = False
        for succ in it:
            if succ == start:
                return list(path)
            if succ in members and succ not in on_path:
                path.append(succ)
                on_path.add(succ)
                work.append((succ, iter(successors[succ])))
                advanced = True
                break
        if not advanced:
            work.pop()
            on_path.discard(path.pop())
    return [start]


@rule("NL001", "error", "netlist")
def combinational_cycle(netlist: Netlist) -> Iterator[Draft]:
    """Combinational cycle: the netlist cannot be levelized."""
    successors = _gate_successors(netlist)
    for component in _cyclic_sccs(successors):
        cycle = _one_cycle(successors, component)
        nets = [netlist.net_name(netlist.gates[g].output) for g in cycle]
        loop = " -> ".join(nets + nets[:1])
        yield (
            f"net:{nets[0]}",
            f"combinational cycle through {loop}",
            {
                "cycle_nets": nets,
                "cycle_gates": [_gate_label(netlist, g) for g in cycle],
            },
        )


@rule("NL002", "error", "netlist")
def floating_net(netlist: Netlist) -> Iterator[Draft]:
    """Floating net: read by a gate or primary output but never driven."""
    driven = set(netlist.primary_inputs)
    driven.update(gate.output for gate in netlist.gates)
    readers: Dict[int, List[int]] = {}
    for index, gate in enumerate(netlist.gates):
        for net in gate.inputs:
            if net not in driven:
                readers.setdefault(net, []).append(index)
    for net in sorted(readers):
        names = [_gate_label(netlist, g) for g in readers[net]]
        yield (
            f"net:{netlist.net_name(net)}",
            f"floating net read by gate(s) {', '.join(names)}",
            {"net": netlist.net_name(net), "readers": names,
             "primary_output": net in netlist.primary_outputs},
        )
    for net in netlist.primary_outputs:
        if net in driven or net in readers:
            continue
        yield (
            f"net:{netlist.net_name(net)}",
            "primary output is floating (no driver)",
            {"net": netlist.net_name(net), "readers": [],
             "primary_output": True},
        )


@rule("NL003", "error", "netlist")
def multiple_drivers(netlist: Netlist) -> Iterator[Draft]:
    """Multiply-driven net: more than one gate drives the same net."""
    drivers: Dict[int, List[int]] = {}
    for index, gate in enumerate(netlist.gates):
        drivers.setdefault(gate.output, []).append(index)
    for net, gate_indices in sorted(drivers.items()):
        conflict = list(gate_indices)
        if net in netlist.primary_inputs:
            # A driven primary input is a driver conflict too.
            conflict = ["<primary input>"] + conflict
        if len(conflict) < 2:
            continue
        names = [
            g if isinstance(g, str) else _gate_label(netlist, g)
            for g in conflict
        ]
        yield (
            f"net:{netlist.net_name(net)}",
            f"net driven by {len(names)} sources: {', '.join(names)}",
            {"net": netlist.net_name(net), "drivers": names},
        )


@rule("NL004", "warning", "netlist")
def dangling_output(netlist: Netlist) -> Iterator[Draft]:
    """Unused gate: its output is read by nothing and is not a primary output."""
    fanout = netlist.fanout_map()
    pos = set(netlist.primary_outputs)
    for index, gate in enumerate(netlist.gates):
        if gate.output in pos or fanout.get(gate.output):
            continue
        yield (
            f"gate:{_gate_label(netlist, index)}",
            f"gate output {netlist.net_name(gate.output)} drives nothing "
            "(dead logic)",
            {"gate": _gate_label(netlist, index),
             "net": netlist.net_name(gate.output)},
        )


@rule("NL005", "error", "netlist")
def fanin_arity(netlist: Netlist) -> Iterator[Draft]:
    """Width mismatch: a gate's fan-in is illegal for its type."""
    for index, gate in enumerate(netlist.gates):
        try:
            validate_fanin(gate.gtype, len(gate.inputs))
        except NetlistError as error:
            yield (
                f"gate:{_gate_label(netlist, index)}",
                str(error),
                {"gate": _gate_label(netlist, index),
                 "gtype": gate.gtype.value,
                 "fanin": len(gate.inputs),
                 "min_fanin": gate.gtype.min_fanin},
            )

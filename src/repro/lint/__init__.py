"""repro.lint — static design-rule checking for the BIBS flow.

A rule-based analyzer over the three object families the paper's
guarantees depend on:

* **netlist** (``NL0xx``): combinational cycles, floating and
  multiply-driven nets, dead logic, illegal gate fan-in;
* **structure** (``ST0xx``): Definition 1 — acyclic, balanced kernels
  with no TPG/SA register conflict — plus test-session schedule clashes;
* **TPG** (``TP0xx``): primitive feedback polynomials, degree vs. stage
  count, cone windows vs. LFSR size, fanout-stem sharing legality, LFSR
  period vs. required test length;
* **testability** (``TB0xx``): static SCOAP/COP forecasting — faults too
  improbable for the TPG window, hard-to-observe nets, predicted
  coverage below target, statically undetectable faults (see
  ``docs/TESTABILITY.md``).

Every violation is a :class:`Finding` with a machine-checkable witness
(the actual cycle, the unequal-length path pair, the colliding cells).
``repro-bist lint`` runs the analyzer from the CLI; ``engine.simulate``
and :class:`repro.bist.BISTSession` run the relevant families as an
opt-out pre-flight (``check=False`` skips), raising
:class:`~repro.errors.LintError` before any worker spawns.  See
``docs/LINT.md`` for the rule catalog and the baseline workflow.
"""

from repro.errors import LintError
from repro.lint.baseline import (
    baseline_entries,
    load_baseline,
    write_baseline,
)
from repro.lint.model import Finding, LintReport, Severity
from repro.lint.registry import Rule, all_rules, get_rule, rule, rules_for
from repro.lint.runner import (
    ensure_clean,
    lint_circuit,
    lint_netlist,
    lint_structure,
    lint_testability,
    lint_tpg,
    preflight_netlist,
    preflight_session,
)
from repro.lint.structure_rules import StructureTarget
from repro.lint.testability_rules import TestabilityTarget

__all__ = [
    "Finding",
    "LintError",
    "LintReport",
    "Rule",
    "Severity",
    "StructureTarget",
    "TestabilityTarget",
    "all_rules",
    "baseline_entries",
    "ensure_clean",
    "get_rule",
    "lint_circuit",
    "lint_netlist",
    "lint_structure",
    "lint_testability",
    "lint_tpg",
    "load_baseline",
    "preflight_netlist",
    "preflight_session",
    "rule",
    "rules_for",
    "write_baseline",
]

"""Data model of the static design-rule checker: findings and reports.

A :class:`Finding` is one rule violation: the rule id, a severity, a
*location* (a path into the netlist/graph/TPG object that was linted), a
human-readable message, and a machine-checkable *witness* — the actual
combinational cycle, the two unequal-length paths, the offending register
pair — so downstream tooling (and the test suite) can verify the claim
instead of trusting the prose.

A :class:`LintReport` aggregates findings for one lint target and renders
them as text or JSON; :func:`repro.lint.baseline` suppresses known
findings by their stable fingerprints.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional


class Severity(enum.Enum):
    """Severity of a finding; ``ERROR`` gates pre-flight and CI."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Lower is more severe (error=0, warning=1, info=2)."""
        return _SEVERITY_RANK[self]

    @classmethod
    def parse(cls, value: "str | Severity") -> "Severity":
        if isinstance(value, Severity):
            return value
        try:
            return cls(value)
        except ValueError:
            choices = ", ".join(s.value for s in cls)
            raise ValueError(
                f"unknown severity {value!r} (choose from {choices})"
            ) from None


_SEVERITY_RANK: Dict[Severity, int] = {
    Severity.ERROR: 0,
    Severity.WARNING: 1,
    Severity.INFO: 2,
}


@dataclass(frozen=True)
class Finding:
    """One rule violation, witness included."""

    rule: str
    severity: Severity
    location: str
    message: str
    witness: Mapping[str, Any] = field(default_factory=dict)

    def fingerprint(self, target: str = "") -> str:
        """Stable id used by baseline files to suppress known findings.

        Deliberately excludes the witness and message: a baseline entry
        should survive cosmetic rewording and small renumberings as long
        as the rule still fires at the same place.
        """
        blob = f"{target}|{self.rule}|{self.location}".encode()
        return hashlib.sha256(blob).hexdigest()[:16]

    def to_json(self, target: str = "") -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "location": self.location,
            "message": self.message,
            "witness": dict(self.witness),
            "fingerprint": self.fingerprint(target),
        }

    def render(self) -> str:
        text = f"[{self.severity.value}] {self.rule} {self.location}: {self.message}"
        if self.witness:
            witness = json.dumps(dict(self.witness), sort_keys=True, default=str)
            text += f"  witness={witness}"
        return text


def _sort_key(finding: Finding):
    return (finding.severity.rank, finding.rule, finding.location)


@dataclass
class LintReport:
    """All findings for one lint target."""

    target: str
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.findings = sorted(self.findings, key=_sort_key)

    # ------------------------------------------------------------- selection

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def infos(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.INFO]

    @property
    def has_errors(self) -> bool:
        return any(f.severity is Severity.ERROR for f in self.findings)

    def counts(self) -> Dict[str, int]:
        counts = {s.value: 0 for s in Severity}
        for finding in self.findings:
            counts[finding.severity.value] += 1
        return counts

    def filtered(self, min_severity: "str | Severity") -> "LintReport":
        """Keep findings at least as severe as ``min_severity``."""
        threshold = Severity.parse(min_severity).rank
        kept = [f for f in self.findings if f.severity.rank <= threshold]
        return LintReport(self.target, kept, list(self.suppressed))

    def with_prefix(self, prefix: str) -> "LintReport":
        """Re-anchor finding locations under ``prefix`` (for merged reports)."""
        findings = [
            Finding(f.rule, f.severity, f"{prefix}:{f.location}",
                    f.message, f.witness)
            for f in self.findings
        ]
        return LintReport(self.target, findings, list(self.suppressed))

    def apply_baseline(self, fingerprints: Iterable[str]) -> "LintReport":
        """Move findings whose fingerprint is baselined into ``suppressed``."""
        known = set(fingerprints)
        kept: List[Finding] = []
        suppressed = list(self.suppressed)
        for finding in self.findings:
            if finding.fingerprint(self.target) in known:
                suppressed.append(finding)
            else:
                kept.append(finding)
        return LintReport(self.target, kept, suppressed)

    # ------------------------------------------------------------- rendering

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": "lint-report",
            "target": self.target,
            "counts": self.counts(),
            "n_suppressed": len(self.suppressed),
            "findings": [f.to_json(self.target) for f in self.findings],
            "suppressed": [f.to_json(self.target) for f in self.suppressed],
        }

    def render_text(self) -> str:
        counts = self.counts()
        lines = [
            f"lint {self.target}: {counts['error']} error(s), "
            f"{counts['warning']} warning(s), {counts['info']} info"
            + (f", {len(self.suppressed)} baselined" if self.suppressed else "")
        ]
        for finding in self.findings:
            lines.append(f"  {finding.render()}")
        if not self.findings:
            lines.append("  clean")
        return "\n".join(lines)

    @staticmethod
    def merge(reports: Iterable["LintReport"],
              target: Optional[str] = None) -> "LintReport":
        """Combine per-object reports into one (locations left as-is)."""
        reports = list(reports)
        findings: List[Finding] = []
        suppressed: List[Finding] = []
        for report in reports:
            findings.extend(report.findings)
            suppressed.extend(report.suppressed)
        name = target if target is not None else (
            reports[0].target if reports else "lint"
        )
        return LintReport(name, findings, suppressed)

"""Structure design rules (``ST0xx``): Definition 1 and session scheduling.

These check the BIBS-side preconditions of the paper on a
:class:`StructureTarget` — the circuit graph, the kernels cut out of it,
and (optionally) a proposed test schedule:

* every kernel must be a *balanced BISTable* structure (Definition 1):
  acyclic, every vertex pair's paths of equal sequential length, and no
  register acting as TPG and SA at once;
* kernels sharing a test session must not conflict on registers.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

from repro.core.kernels import Kernel
from repro.core.schedule import Schedule, kernels_conflict
from repro.graph.model import CircuitGraph
from repro.graph.structures import (
    cyclic_vertices,
    find_urfs_witnesses,
    is_acyclic,
    simple_cycles,
)
from repro.lint.registry import Draft, rule

# Unbalanced kernels can have quadratically many URFS witness pairs; a
# handful is enough to localize the problem.
MAX_WITNESSES_PER_KERNEL = 8


@dataclass
class StructureTarget:
    """What the structure family lints: graph, kernels, optional schedule."""

    graph: Optional[CircuitGraph] = None
    kernels: Sequence[Kernel] = field(default_factory=tuple)
    schedule: Optional[Schedule] = None
    name: str = "structure"


def _shortest_cycle(graph: CircuitGraph) -> List[str]:
    cycles = simple_cycles(graph, limit=200)
    if cycles:
        return min(cycles, key=len)
    return sorted(cyclic_vertices(graph))


@rule("ST001", "error", "structure")
def kernel_cyclic(target: StructureTarget) -> Iterator[Draft]:
    """Non-acyclic kernel: Definition 1 requires kernels without cycles."""
    for kernel in target.kernels:
        if is_acyclic(kernel.graph):
            continue
        cycle = _shortest_cycle(kernel.graph)
        loop = " -> ".join(cycle + cycle[:1])
        yield (
            kernel.name,
            f"kernel contains a directed cycle: {loop}",
            {"kernel": kernel.name, "cycle": cycle},
        )


@rule("ST002", "error", "structure")
def kernel_unbalanced(target: StructureTarget) -> Iterator[Draft]:
    """Unbalanced kernel: two paths between a vertex pair differ in
    sequential length (Definition 1 balance violation)."""
    for kernel in target.kernels:
        if not is_acyclic(kernel.graph):
            continue  # ST001 reports the cycle; path lengths are undefined
        witnesses = find_urfs_witnesses(kernel.graph)
        for witness in witnesses[:MAX_WITNESSES_PER_KERNEL]:
            yield (
                f"{kernel.name}:{witness.source}->{witness.target}",
                f"paths from {witness.source} to {witness.target} have "
                f"sequential lengths {witness.min_length} and "
                f"{witness.max_length} (imbalance {witness.imbalance})",
                {
                    "kernel": kernel.name,
                    "source": witness.source,
                    "target": witness.target,
                    "min_length": witness.min_length,
                    "max_length": witness.max_length,
                    "imbalance": witness.imbalance,
                },
            )
        if len(witnesses) > MAX_WITNESSES_PER_KERNEL:
            yield (
                kernel.name,
                f"{len(witnesses) - MAX_WITNESSES_PER_KERNEL} further "
                "unbalanced vertex pairs omitted",
                {"kernel": kernel.name, "omitted":
                    len(witnesses) - MAX_WITNESSES_PER_KERNEL},
            )


@rule("ST003", "error", "structure")
def bilbo_port_conflict(target: StructureTarget) -> Iterator[Draft]:
    """BILBO port conflict: a register would generate patterns and compress
    responses for the same kernel at once."""
    for kernel in target.kernels:
        shared = sorted(set(kernel.tpg_registers) & set(kernel.sa_registers))
        internal = sorted(
            e.register for e in kernel.internal_bilbo_edges if e.register
        )
        if not shared and not internal:
            continue
        offenders = sorted(set(shared) | set(internal))
        yield (
            kernel.name,
            f"register(s) {', '.join(offenders)} are both TPG and SA for "
            "the kernel (Definition 1 forbids a shared driver/driven "
            "register)",
            {"kernel": kernel.name, "registers": offenders,
             "internal_bilbo_edges": internal},
        )


@rule("ST004", "error", "structure")
def session_conflict(target: StructureTarget) -> Iterator[Draft]:
    """Session schedule conflict: two kernels in one session clash on a
    register resource."""
    if target.schedule is None:
        return
    for session_index, session in enumerate(target.schedule.sessions):
        for a, b in itertools.combinations(session, 2):
            if not kernels_conflict(a.kernel, b.kernel):
                continue
            a_tpg, a_sa = set(a.kernel.tpg_registers), set(a.kernel.sa_registers)
            b_tpg, b_sa = set(b.kernel.tpg_registers), set(b.kernel.sa_registers)
            tpg_vs_sa = sorted((a_tpg & b_sa) | (a_sa & b_tpg))
            shared_sa = sorted(a_sa & b_sa)
            yield (
                f"session{session_index + 1}:{a.name}+{b.name}",
                f"kernels {a.name} and {b.name} cannot share a session "
                f"(TPG/SA clash on {tpg_vs_sa or shared_sa})",
                {
                    "session": session_index + 1,
                    "kernels": [a.name, b.name],
                    "tpg_vs_sa": tpg_vs_sa,
                    "shared_sa": shared_sa,
                },
            )


@rule("ST005", "info", "structure")
def graph_cyclic(target: StructureTarget) -> Iterator[Draft]:
    """Cyclic circuit graph: fine for operation, but BIBS must cut every
    cycle with BILBO registers before kernels exist."""
    if target.graph is None or is_acyclic(target.graph):
        return
    cycle = _shortest_cycle(target.graph)
    loop = " -> ".join(cycle + cycle[:1])
    yield (
        target.graph.name,
        f"circuit graph contains a directed cycle ({loop}); BILBO "
        "selection must cut it",
        {"cycle": cycle},
    )

"""The rule registry: ``@rule(id, severity, target)`` and the dispatcher.

A rule is a generator taking the target object and yielding
``(location, message, witness)`` drafts; the registry stamps each draft
with the rule's id and severity to produce :class:`~repro.lint.model.Finding`
records.  Rules are grouped by *target family* — ``"netlist"`` checks a
:class:`repro.netlist.Netlist`, ``"structure"`` a
:class:`~repro.lint.structure_rules.StructureTarget` (graph + kernels +
schedule), ``"tpg"`` a :class:`repro.tpg.TPGDesign`, ``"testability"`` a
:class:`~repro.lint.testability_rules.TestabilityTarget` (netlist +
static SCOAP/COP analysis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple,
)

from repro.lint.model import Finding, Severity

Draft = Tuple[str, str, Mapping[str, Any]]
RuleFunc = Callable[[Any], Iterator[Draft]]

TARGET_FAMILIES = ("netlist", "structure", "tpg", "testability")


@dataclass(frozen=True)
class Rule:
    """One registered design rule."""

    id: str
    severity: Severity
    target: str
    func: RuleFunc
    title: str

    def run(self, obj: Any) -> List[Finding]:
        return [
            Finding(self.id, self.severity, location, message, dict(witness))
            for location, message, witness in self.func(obj)
        ]


_RULES: Dict[str, Rule] = {}


def rule(rule_id: str, severity: str, target: str) -> Callable[[RuleFunc], RuleFunc]:
    """Register a design rule.

    ``severity`` is one of ``error``/``warning``/``info``; ``target`` names
    the family whose lint entry point will run this rule.
    """
    if target not in TARGET_FAMILIES:
        raise ValueError(
            f"unknown rule target {target!r} (choose from {TARGET_FAMILIES})"
        )

    def decorate(func: RuleFunc) -> RuleFunc:
        if rule_id in _RULES:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        title = (func.__doc__ or "").strip().splitlines()[0] if func.__doc__ else ""
        _RULES[rule_id] = Rule(rule_id, Severity.parse(severity), target, func, title)
        return func

    return decorate


def get_rule(rule_id: str) -> Rule:
    try:
        return _RULES[rule_id]
    except KeyError:
        raise KeyError(f"no rule registered as {rule_id!r}") from None


def all_rules() -> List[Rule]:
    return sorted(_RULES.values(), key=lambda r: r.id)


def rules_for(target: str) -> List[Rule]:
    return [r for r in all_rules() if r.target == target]


def run_rules(
    target: str,
    obj: Any,
    only: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Run every rule of the family (or the ``only`` subset) against ``obj``."""
    wanted = set(only) if only is not None else None
    findings: List[Finding] = []
    for r in rules_for(target):
        if wanted is not None and r.id not in wanted:
            continue
        findings.extend(r.run(obj))
    return findings

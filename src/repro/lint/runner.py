"""Lint entry points: run rule families and gate on error findings.

``lint_netlist`` / ``lint_structure`` / ``lint_tpg`` run one family each;
``lint_circuit`` chains the whole static pipeline for an RTL circuit
(graph -> kernels -> per-kernel TPG).  ``preflight_netlist`` and
``preflight_session`` are the engine/BIST hooks: they raise a structured
:class:`~repro.errors.LintError` when error-severity findings exist, and
publish ``lint.*`` counters/spans through :mod:`repro.telemetry` so run
manifests record what was checked.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro import telemetry
from repro.errors import (
    BalanceError,
    GraphError,
    LintError,
    SelectionError,
    TPGError,
)
from repro.lint.model import LintReport
from repro.lint.registry import run_rules
from repro.lint.structure_rules import StructureTarget

# Importing the rule modules is what populates the registry.
from repro.lint import netlist_rules as _netlist_rules  # noqa: F401
from repro.lint import testability_rules as _testability_rules  # noqa: F401
from repro.lint import tpg_rules as _tpg_rules          # noqa: F401


def _publish(report: LintReport) -> LintReport:
    telemetry.count("lint.findings", len(report.findings))
    telemetry.count("lint.errors", len(report.errors))
    return report


def lint_netlist(netlist, *, name: Optional[str] = None) -> LintReport:
    """Run the netlist rule family against a :class:`repro.netlist.Netlist`."""
    target = name or getattr(netlist, "name", "netlist")
    with telemetry.span("lint.netlist", target=target,
                        n_gates=len(netlist.gates)):
        findings = run_rules("netlist", netlist)
    return _publish(LintReport(target, findings))


def lint_structure(
    graph=None,
    kernels: Sequence = (),
    schedule=None,
    *,
    name: Optional[str] = None,
) -> LintReport:
    """Run the structure rule family (Definition 1, schedule conflicts)."""
    target = name or (graph.name if graph is not None else "structure")
    obj = StructureTarget(graph=graph, kernels=tuple(kernels),
                          schedule=schedule, name=target)
    with telemetry.span("lint.structure", target=target,
                        n_kernels=len(obj.kernels)):
        findings = run_rules("structure", obj)
    return _publish(LintReport(target, findings))


def lint_tpg(design, *, name: Optional[str] = None) -> LintReport:
    """Run the TPG rule family against a :class:`repro.tpg.TPGDesign`."""
    target = name or f"tpg:{design.kernel.name}"
    with telemetry.span("lint.tpg", target=target,
                        lfsr_stages=design.lfsr_stages):
        findings = run_rules("tpg", design)
    return _publish(LintReport(target, findings))


def lint_testability(
    netlist,
    *,
    profile=None,
    window: Optional[int] = None,
    co_threshold: Optional[float] = None,
    coverage_target: Optional[float] = None,
    name: Optional[str] = None,
) -> LintReport:
    """Run the testability rule family against a netlist.

    Builds the SCOAP measures and the COP :class:`~repro.analysis.
    random_testability.TestabilityProfile` (pass ``profile`` to reuse one
    already computed); ``window`` is the TPG pattern budget the
    random-resistant threshold is derived from.  Not part of the engine
    pre-flight — coverage forecasting is advisory, run via
    ``repro-bist analyze``.
    """
    from repro.analysis.random_testability import analyze_netlist
    from repro.analysis.scoap import scoap
    from repro.lint.testability_rules import TestabilityTarget

    target = name or getattr(netlist, "name", "netlist")
    with telemetry.span("lint.testability", target=target,
                        n_gates=len(netlist.gates)):
        kwargs = {}
        if window is not None:
            kwargs["window"] = window
        if co_threshold is not None:
            kwargs["co_threshold"] = co_threshold
        if coverage_target is not None:
            kwargs["coverage_target"] = coverage_target
        obj = TestabilityTarget(
            netlist=netlist,
            profile=profile if profile is not None else analyze_netlist(netlist),
            measures=scoap(netlist),
            name=target,
            **kwargs,
        )
        findings = run_rules("testability", obj)
    return _publish(LintReport(target, findings))


def lint_circuit(
    circuit,
    *,
    bilbo: Optional[Iterable[str]] = None,
    polynomial: Optional[int] = None,
    name: Optional[str] = None,
) -> LintReport:
    """Full static pipeline for an RTL circuit.

    Builds the circuit graph, cuts kernels (at ``bilbo`` if given, else the
    BIBS selection), runs the structure rules, then designs an MC_TPG per
    logic kernel (``polynomial`` overrides the feedback choice — the knob
    that lets lint vet a *proposed* polynomial) and runs the TPG rules.
    Kernels whose structure violations prevent TPG construction are
    reported by the structure rules alone.
    """
    from repro.core.bibs import make_bibs_testable
    from repro.core.kernels import extract_kernels
    from repro.graph.build import build_circuit_graph
    from repro.tpg.mc_tpg import mc_tpg

    target = name or circuit.name
    with telemetry.span("lint.circuit", target=target):
        graph = build_circuit_graph(circuit)
        kernels: List = []
        if bilbo:
            kernels = extract_kernels(graph, bilbo)
        else:
            try:
                kernels = list(make_bibs_testable(graph).kernels)
            except SelectionError:
                kernels = []
        reports = [
            lint_structure(graph=graph, kernels=kernels, name=target)
        ]
        for kernel in kernels:
            if not kernel.logic_blocks:
                continue
            try:
                design = mc_tpg(kernel.to_kernel_spec(), polynomial=polynomial)
            except (TPGError, BalanceError, GraphError):
                # The structure rules already explain why no TPG exists
                # (cyclic or unbalanced kernel); nothing further to lint.
                continue
            reports.append(
                lint_tpg(design, name=target).with_prefix(kernel.name)
            )
    # The per-family calls above already published their lint.* counters.
    return LintReport.merge(reports, target=target)


# ------------------------------------------------------------------ pre-flight


def _error_summary(report: LintReport, limit: int = 5) -> str:
    parts = [
        f"{f.rule} {f.location}: {f.message}" for f in report.errors[:limit]
    ]
    more = len(report.errors) - limit
    if more > 0:
        parts.append(f"... and {more} more")
    return "; ".join(parts)


def ensure_clean(report: LintReport, context: str) -> LintReport:
    """Raise :class:`LintError` when the report has error findings."""
    if report.has_errors:
        telemetry.count("lint.preflight_failures")
        raise LintError(
            f"{context} failed for {report.target}: "
            f"{_error_summary(report)}",
            findings=report.errors,
        )
    return report


def preflight_netlist(netlist, *, name: Optional[str] = None) -> LintReport:
    """Engine pre-flight: lint the netlist, raise before any shard spawns."""
    with telemetry.span("lint.preflight", target=name or netlist.name):
        telemetry.count("lint.preflight_runs")
        report = lint_netlist(netlist, name=name)
    return ensure_clean(report, "pre-flight lint")


def preflight_session(kernel, design, *, name: Optional[str] = None) -> LintReport:
    """BIST-session pre-flight: lint the kernel structure and its TPG."""
    target = name or kernel.name
    with telemetry.span("lint.preflight", target=target):
        telemetry.count("lint.preflight_runs")
        report = LintReport.merge(
            [
                lint_structure(kernels=[kernel], name=target),
                lint_tpg(design, name=target).with_prefix("tpg"),
            ],
            target=target,
        )
    return ensure_clean(report, "pre-flight lint")

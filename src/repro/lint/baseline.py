"""Baseline files: suppress known findings so CI fails only on *new* ones.

The baseline is a JSON document listing finding fingerprints (see
:meth:`~repro.lint.model.Finding.fingerprint`) with enough context to
audit each suppression by hand::

    {
      "kind": "lint-baseline",
      "version": 1,
      "suppress": [
        {"fingerprint": "...", "rule": "ST002", "target": "figure4",
         "location": "kernel1:C1->C3"}
      ]
    }

``repro-bist lint --baseline FILE`` moves matching findings out of the
failing set; ``--update-baseline`` rewrites the file from the current
findings (the reviewed way to accept a known violation).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Set

from repro.lint.model import LintReport

BASELINE_KIND = "lint-baseline"
BASELINE_VERSION = 1


def load_baseline(path: str) -> Set[str]:
    """Fingerprints suppressed by the baseline file at ``path``."""
    with open(path) as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict) or doc.get("kind") != BASELINE_KIND:
        raise ValueError(f"{path}: not a lint baseline file")
    entries = doc.get("suppress", [])
    if not isinstance(entries, list):
        raise ValueError(f"{path}: 'suppress' must be a list")
    fingerprints: Set[str] = set()
    for entry in entries:
        if isinstance(entry, str):
            fingerprints.add(entry)
        elif isinstance(entry, dict) and "fingerprint" in entry:
            fingerprints.add(str(entry["fingerprint"]))
        else:
            raise ValueError(f"{path}: malformed baseline entry {entry!r}")
    return fingerprints


def baseline_entries(reports: Iterable[LintReport]) -> List[Dict[str, Any]]:
    """Audit-friendly suppression entries for every current finding."""
    entries: List[Dict[str, Any]] = []
    seen: Set[str] = set()
    for report in reports:
        for finding in list(report.findings) + list(report.suppressed):
            fingerprint = finding.fingerprint(report.target)
            if fingerprint in seen:
                continue
            seen.add(fingerprint)
            entries.append({
                "fingerprint": fingerprint,
                "rule": finding.rule,
                "target": report.target,
                "location": finding.location,
            })
    entries.sort(key=lambda e: (e["target"], e["rule"], e["location"]))
    return entries


def write_baseline(path: str, reports: Iterable[LintReport]) -> int:
    """Write a baseline accepting every current finding; returns the count."""
    entries = baseline_entries(reports)
    doc = {
        "kind": BASELINE_KIND,
        "version": BASELINE_VERSION,
        "suppress": entries,
    }
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(entries)

"""TPG design rules (``TP0xx``): the paper's SC_TPG/MC_TPG preconditions.

Theorem 4/7 exhaustiveness only holds when the feedback polynomial is
primitive, its degree matches the LFSR stage count, every cone's
bit-stream window fits inside the LFSR, no two register cells of a cone
observe the same stream position (illegal fanout-stem sharing), and the
LFSR period covers the required ``2^w - 1`` patterns of the widest cone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.lint.registry import Draft, rule
from repro.tpg.design import TPGDesign
from repro.tpg.gf2 import (
    degree,
    exponents_of,
    is_irreducible,
    is_primitive,
    poly_mod,
    poly_mul_mod,
)

# Bound on brute-force period computation for non-primitive polynomials.
MAX_PERIOD_SEARCH_DEGREE = 22


def _poly_str(poly: int) -> str:
    terms = []
    for exponent in exponents_of(poly):
        if exponent == 0:
            terms.append("1")
        elif exponent == 1:
            terms.append("x")
        else:
            terms.append(f"x^{exponent}")
    return " + ".join(terms) if terms else "0"


@dataclass
class _ConeWindow:
    """Stream positions one cone observes under the design's assignment."""

    cone: str
    logical_span: Optional[int]       # None when cells collide
    collisions: List[Dict[str, Any]]  # position + the two colliding cells


def _cone_windows(design: TPGDesign) -> List[_ConeWindow]:
    """Per-cone stream windows, tolerating (and reporting) collisions.

    A cell labelled ``L`` of a register at sequential length ``d`` observes
    feedback stream bit ``b(t - (L - 1) - d)`` — the same position algebra
    as :func:`repro.tpg.mc_tpg.cone_spans`, but collected instead of
    raised so lint can report every offending pair.
    """
    kernel = design.kernel
    windows: List[_ConeWindow] = []
    for cone in kernel.cones:
        positions: Dict[int, Tuple[str, int]] = {}
        collisions: List[Dict[str, Any]] = []
        for register in kernel.registers:
            if not cone.depends_on(register.name):
                continue
            depth = cone.depths[register.name]
            for cell in range(1, register.width + 1):
                label = design.cell_labels[(register.name, cell)]
                position = (label - 1) + depth
                if position in positions:
                    other = positions[position]
                    collisions.append({
                        "position": position,
                        "cells": [
                            {"register": other[0], "label": other[1]},
                            {"register": register.name, "label": label},
                        ],
                    })
                else:
                    positions[position] = (register.name, label)
        span: Optional[int] = None
        if positions and not collisions:
            span = max(positions) - min(positions) + 1
        windows.append(_ConeWindow(cone.name, span, collisions))
    return windows


def lfsr_period(polynomial: int, stages: int) -> Optional[int]:
    """Best-case cycle length of a type-1 LFSR with this feedback.

    ``2^M - 1`` for a primitive polynomial; the multiplicative order of
    ``x`` modulo the polynomial otherwise (the longest state cycle any
    nonzero seed can reach).  ``0`` for singular feedback (no constant
    term: states leak to zero).  ``None`` when the degree is too large to
    brute-force and the polynomial is not primitive.
    """
    if polynomial & 1 == 0:
        return 0
    if is_primitive(polynomial):
        return (1 << degree(polynomial)) - 1
    if degree(polynomial) > MAX_PERIOD_SEARCH_DEGREE:
        return None
    limit = (1 << degree(polynomial)) - 1
    acc = poly_mod(2, polynomial)
    for exponent in range(1, limit + 1):
        if acc == 1:
            return exponent
        acc = poly_mul_mod(acc, 2, polynomial)
    return 0


@rule("TP001", "error", "tpg")
def nonprimitive_polynomial(design: TPGDesign) -> Iterator[Draft]:
    """Non-primitive feedback polynomial: the LFSR cannot sweep all
    2^M - 1 nonzero states (Theorem 4's premise)."""
    poly = design.polynomial
    if is_primitive(poly):
        return
    irreducible = is_irreducible(poly)
    kind = "irreducible but non-primitive" if irreducible else "reducible"
    yield (
        "polynomial",
        f"feedback polynomial {_poly_str(poly)} is {kind}; the TPG "
        "constructions require a primitive polynomial",
        {
            "polynomial": poly,
            "exponents": exponents_of(poly),
            "degree": degree(poly),
            "irreducible": irreducible,
        },
    )


@rule("TP002", "error", "tpg")
def polynomial_degree_mismatch(design: TPGDesign) -> Iterator[Draft]:
    """Polynomial degree differs from the LFSR stage count."""
    deg = degree(design.polynomial)
    if deg == design.lfsr_stages:
        return
    yield (
        "polynomial",
        f"feedback polynomial has degree {deg} but the LFSR has "
        f"{design.lfsr_stages} stages",
        {
            "degree": deg,
            "lfsr_stages": design.lfsr_stages,
            "polynomial": design.polynomial,
        },
    )


@rule("TP003", "error", "tpg")
def window_exceeds_lfsr(design: TPGDesign) -> Iterator[Draft]:
    """Cone window wider than the LFSR: Theorem 7 requires every cone's
    logical span to fit within the M LFSR stages."""
    for window in _cone_windows(design):
        if window.logical_span is None:
            continue  # TP004 reports the collision
        if window.logical_span <= design.lfsr_stages:
            continue
        yield (
            f"cone:{window.cone}",
            f"cone {window.cone} observes a bit-stream window of "
            f"{window.logical_span} positions but the LFSR has only "
            f"{design.lfsr_stages} stages",
            {
                "cone": window.cone,
                "logical_span": window.logical_span,
                "lfsr_stages": design.lfsr_stages,
            },
        )


@rule("TP004", "error", "tpg")
def shared_stem_collision(design: TPGDesign) -> Iterator[Draft]:
    """Illegal fanout-stem sharing: two cells of one cone observe the same
    stream position, so the cone can never see independent values there."""
    for window in _cone_windows(design):
        for collision in window.collisions:
            cells = collision["cells"]
            pair = " and ".join(
                f"{cell['register']}[label {cell['label']}]" for cell in cells
            )
            yield (
                f"cone:{window.cone}",
                f"cone {window.cone}: cells {pair} observe the same "
                f"stream position {collision['position']}",
                {"cone": window.cone, **collision},
            )


@rule("TP005", "error", "tpg")
def period_too_short(design: TPGDesign) -> Iterator[Draft]:
    """LFSR period shorter than the required functionally exhaustive test
    length for the widest cone."""
    width = design.kernel.max_cone_width
    if width <= 0:
        return
    required = (1 << width) - 1
    period = lfsr_period(design.polynomial, design.lfsr_stages)
    if period is None:
        # Too large to brute-force; a non-primitive polynomial of degree M
        # caps the period strictly below 2^M - 1, which only falls short
        # when the widest cone needs the full sweep.
        if degree(design.polynomial) <= width:
            yield (
                "polynomial",
                f"non-primitive feedback cannot reach the {required} "
                f"patterns the widest cone (w={width}) requires",
                {"period": None, "required": required, "cone_width": width,
                 "lfsr_stages": design.lfsr_stages},
            )
        return
    if period >= required:
        return
    yield (
        "polynomial",
        f"LFSR period {period} is shorter than the {required} patterns "
        f"required to exhaust the widest cone (w={width})",
        {"period": period, "required": required, "cone_width": width,
         "lfsr_stages": design.lfsr_stages},
    )

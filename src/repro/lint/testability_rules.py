"""Testability design rules (``TB0xx``): static random-pattern coverage risk.

Where the ``NL``/``ST``/``TP`` families check *structural* legality, these
rules read the static testability analysis
(:mod:`repro.analysis.scoap` + :mod:`repro.analysis.random_testability`)
and flag what will go wrong *statistically* under the paper's
pseudo-random TPG: faults too improbable to fall inside the configured
pattern window, nets whose SCOAP observability makes them hard to
sensitize, and netlists whose predicted coverage misses the Table 2 bar.
They run through :func:`repro.lint.lint_testability` and the
``repro-bist analyze`` subcommand — not the netlist pre-flight, whose
job is structural validity, not coverage forecasting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.analysis.random_testability import (
    DEFAULT_COVERAGE_TARGET,
    DEFAULT_WINDOW,
    TestabilityProfile,
)
from repro.analysis.scoap import ScoapMeasures
from repro.lint.registry import Draft, rule
from repro.netlist.netlist import Netlist

#: SCOAP observability above which a net is reported as hard to observe.
#: Calibrated against the scenario corpus: the BIBS kernels' worst nets
#: sit in the 30-40 range; a deep unbalanced chain blows past 50.
DEFAULT_CO_THRESHOLD = 50.0


@dataclass
class TestabilityTarget:
    """What the ``TB`` rules lint: a netlist plus its static analysis."""

    netlist: Netlist
    profile: TestabilityProfile
    measures: ScoapMeasures
    window: int = DEFAULT_WINDOW
    co_threshold: float = DEFAULT_CO_THRESHOLD
    coverage_target: float = DEFAULT_COVERAGE_TARGET
    name: str = field(default="")

    def __post_init__(self) -> None:
        if not self.name:
            self.name = self.netlist.name


@rule("TB001", "warning", "testability")
def random_resistant_fault(target: TestabilityTarget) -> Iterator[Draft]:
    """Random-resistant fault: detection probability below the TPG window."""
    threshold = 1.0 / target.window
    for entry in target.profile.random_resistant(threshold):
        p = entry.detection_probability
        if p <= 0.0:
            continue  # statically undetectable — TB004's finding
        yield (
            f"fault:{entry.key()}",
            f"fault {entry.fault.describe(target.netlist)} has detection "
            f"probability {p:.3g} < 1/{target.window} — unlikely to be "
            "caught inside the TPG window",
            {
                "fault": entry.key(),
                "detection_probability": p,
                "expected_patterns": entry.expected_patterns(),
                "window": target.window,
            },
        )


@rule("TB002", "warning", "testability")
def hard_to_observe_net(target: TestabilityTarget) -> Iterator[Draft]:
    """Hard-to-observe net: SCOAP observability above the threshold."""
    measures = target.measures
    for net in sorted(measures.co):
        co = measures.co[net]
        if not (target.co_threshold <= co < math.inf):
            # inf means dead logic — NL004 already owns that finding.
            continue
        yield (
            f"net:{target.netlist.net_name(net)}",
            f"net has SCOAP observability {co:g} >= "
            f"{target.co_threshold:g} — sensitizing a path to an output "
            "requires fixing too many inputs",
            {
                "net": target.netlist.net_name(net),
                "co": co,
                "cc0": measures.cc0.get(net),
                "cc1": measures.cc1.get(net),
                "threshold": target.co_threshold,
            },
        )


@rule("TB003", "info", "testability")
def coverage_below_target(target: TestabilityTarget) -> Iterator[Draft]:
    """Predicted coverage at the TPG window misses the coverage target."""
    predicted = target.profile.predicted_coverage(target.window)
    if predicted >= target.coverage_target:
        return
    needed = target.profile.expected_patterns_for(target.coverage_target)
    yield (
        f"netlist:{target.name}",
        f"predicted random-pattern coverage {predicted:.4f} after "
        f"{target.window} patterns is below the {target.coverage_target:g} "
        "target",
        {
            "predicted_coverage": predicted,
            "coverage_target": target.coverage_target,
            "window": target.window,
            "patterns_to_target": needed,
            "n_faults": target.profile.n_faults,
        },
    )


@rule("TB004", "warning", "testability")
def statically_undetectable_fault(target: TestabilityTarget) -> Iterator[Draft]:
    """Statically undetectable fault: zero detection probability."""
    for entry in target.profile.undetectable():
        reason = (
            "excitation" if entry.excitation <= 0.0 else "observability"
        )
        yield (
            f"fault:{entry.key()}",
            f"fault {entry.fault.describe(target.netlist)} has zero "
            f"{reason} under the COP model — no random pattern length "
            "will detect it",
            {
                "fault": entry.key(),
                "excitation": entry.excitation,
                "observability": entry.observability,
            },
        )

"""Multiple-input signature register (MISR) analysis.

The SA half of the BILBO story: output responses are compressed into a
signature; a fault is observed iff its response stream produces a different
signature than the fault-free stream.  The textbook aliasing probability for
an n-bit MISR over long streams is 2^-n.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.tpg.lfsr import Type1LFSR
from repro.tpg.polynomials import primitive_polynomial


class MISR:
    """An n-bit multiple-input signature register."""

    def __init__(self, width: int, polynomial: Optional[int] = None):
        self.width = width
        self.polynomial = polynomial if polynomial is not None else primitive_polynomial(width)
        self._lfsr = Type1LFSR(width, self.polynomial)

    def signature(self, stream: Iterable[int], seed: int = 0) -> int:
        """Compress a stream of parallel response words into a signature."""
        state = seed & self._lfsr.mask
        for word in stream:
            state = self._lfsr.step(state) ^ (word & self._lfsr.mask)
        return state

    def distinguishes(
        self, good_stream: Iterable[int], bad_stream: Iterable[int], seed: int = 0
    ) -> bool:
        """True iff the two streams produce different signatures."""
        return self.signature(good_stream, seed) != self.signature(bad_stream, seed)

    def aliasing_probability(self) -> float:
        """Asymptotic aliasing probability, 2^-n."""
        return 2.0 ** -self.width


def signature_pair(
    width: int,
    good_stream: Iterable[int],
    bad_stream: Iterable[int],
    polynomial: Optional[int] = None,
) -> Tuple[int, int]:
    """Convenience: (good signature, faulty signature)."""
    misr = MISR(width, polynomial)
    return misr.signature(good_stream), misr.signature(bad_stream)

"""BILBO and CBILBO register models.

A BILBO register (Konemann/Mucha/Zwiehoff, the paper's reference [1]) is a
register whose cells can be reconfigured by two control lines into one of
four modes: normal parallel load, scan shift, maximal-length LFSR test
pattern generation (TPG), or multiple-input signature analysis (SA).  The
defining limitation the BIBS methodology is built around is that a BILBO
register operates as *either* a TPG *or* an SA during a test session —
never both.  A CBILBO (concurrent BILBO, reference [7]) can do both at once
at roughly double the hardware cost, which is why the paper uses them "only
when necessary".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ReproError
from repro.tpg.lfsr import Type1LFSR
from repro.tpg.polynomials import primitive_polynomial


class BILBOMode(enum.Enum):
    """Operating modes selected by the BILBO control inputs B1 B2."""

    NORMAL = "normal"  # B1=1 B2=1: parallel load (system register)
    SCAN = "scan"      # B1=0 B2=0: serial shift register
    TPG = "tpg"        # B1=1 B2=0, scan-in held: pattern generator (LFSR)
    SA = "sa"          # B1=1 B2=0: signature analyzer (MISR)
    RESET = "reset"    # B1=0 B2=1: synchronous reset


@dataclass
class BILBORegister:
    """A width-bit BILBO register with cycle-accurate mode behaviour.

    The TPG mode steps a type-1 LFSR; the SA mode folds parallel inputs into
    the LFSR state (MISR).  ``state`` packs cell i at bit i.
    """

    name: str
    width: int
    polynomial: Optional[int] = None
    is_cbilbo: bool = False

    def __post_init__(self):
        if self.width < 1:
            raise ReproError(f"BILBO register {self.name} needs positive width")
        if self.polynomial is None:
            self.polynomial = primitive_polynomial(self.width)
        self._lfsr = Type1LFSR(self.width, self.polynomial)
        self.mode = BILBOMode.NORMAL
        self.state = 0
        # CBILBO keeps an independent TPG state alongside the SA state.
        self._tpg_state = 1

    # -------------------------------------------------------------- control

    def set_mode(self, mode: BILBOMode) -> None:
        self.mode = mode

    def seed(self, value: int) -> None:
        """Load a test seed (TPG/SA initialisation)."""
        self.state = value & self._lfsr.mask
        self._tpg_state = value & self._lfsr.mask or 1

    # -------------------------------------------------------------- clocking

    def clock(self, parallel_in: int = 0, scan_in: int = 0) -> int:
        """Advance one cycle; returns the new parallel output.

        ``parallel_in`` feeds NORMAL (load) and SA (signature) modes;
        ``scan_in`` feeds SCAN mode.
        """
        mask = self._lfsr.mask
        if self.mode is BILBOMode.NORMAL:
            self.state = parallel_in & mask
        elif self.mode is BILBOMode.RESET:
            self.state = 0
        elif self.mode is BILBOMode.SCAN:
            self.state = ((self.state << 1) | (scan_in & 1)) & mask
        elif self.mode is BILBOMode.TPG:
            self.state = self._lfsr.step(self.state)
        elif self.mode is BILBOMode.SA:
            # MISR: LFSR step XOR parallel inputs.
            self.state = self._lfsr.step(self.state) ^ (parallel_in & mask)
            if self.is_cbilbo:
                self._tpg_state = self._lfsr.step(self._tpg_state)
        return self.output()

    def output(self) -> int:
        """Parallel output this cycle.

        A CBILBO in SA mode simultaneously exposes its TPG state on the
        output side — the concurrent behaviour that lets one register test a
        self-loop kernel.
        """
        if self.is_cbilbo and self.mode is BILBOMode.SA:
            return self._tpg_state
        return self.state

    def tpg_sequence(self, count: int, seed: int = 1) -> List[int]:
        """Convenience: the first ``count`` TPG states from ``seed``."""
        self.seed(seed)
        self.set_mode(BILBOMode.TPG)
        values: List[int] = []
        for _ in range(count):
            values.append(self.state)
            self.clock()
        return values

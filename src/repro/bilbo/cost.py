"""Area and delay cost models for BIST hardware.

Units are D flip-flop equivalents (a plain D-FF costs 1.0).  The BILBO cell
factor is calibrated against the paper's one hard layout datum (Example 2:
"2 extra D-type F/Fs ... adding 7.2% extra area to a 12-bit BILBO register
based on the magic layout tool"), giving

    BILBO_CELL_AREA = 2 / (0.072 * 12) ~= 2.3148 D-FF equivalents per bit.

A CBILBO cell needs an extra flip-flop and mux per bit (reference [7]);
we model it as a BILBO cell plus one D-FF.  Each BILBO register on a
combinational path adds 1 time unit of delay, exactly the paper's
"maximal delay" accounting in Table 2 row 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

DFF_AREA = 1.0
BILBO_CELL_AREA = 2.0 / (0.072 * 12.0)
CBILBO_CELL_AREA = BILBO_CELL_AREA + DFF_AREA
BILBO_DELAY_UNITS = 1


@dataclass(frozen=True)
class AreaReport:
    """Area accounting for one BIST design."""

    n_bilbo_registers: int
    n_bilbo_flipflops: int
    n_extra_dffs: int

    @property
    def bilbo_area(self) -> float:
        return self.n_bilbo_flipflops * BILBO_CELL_AREA

    @property
    def extra_dff_area(self) -> float:
        return self.n_extra_dffs * DFF_AREA

    @property
    def total_area(self) -> float:
        return self.bilbo_area + self.extra_dff_area

    def overhead_vs_plain_registers(self) -> float:
        """Fractional area added relative to the same FFs as plain registers."""
        plain = self.n_bilbo_flipflops * DFF_AREA
        if plain == 0:
            return 0.0
        return (self.total_area - plain) / plain


def bilbo_area(widths: Iterable[int]) -> float:
    """Area of a set of BILBO registers, in D-FF equivalents."""
    return sum(widths) * BILBO_CELL_AREA


def tpg_extra_area_fraction(n_extra_dffs: int, bilbo_width: int) -> float:
    """Extra-FF area as a fraction of the underlying BILBO register's area.

    Reproduces the paper's Example 2 figure: 2 extra D-FFs over a 12-bit
    BILBO register -> ~7.2%.
    """
    if bilbo_width <= 0:
        return 0.0
    return (n_extra_dffs * DFF_AREA) / (bilbo_width * BILBO_CELL_AREA)


def register_conversion_cost(widths: Mapping[str, int], converted: Iterable[str]) -> float:
    """Added area of converting the named registers from plain to BILBO."""
    return sum(widths[name] * (BILBO_CELL_AREA - DFF_AREA) for name in converted)

"""BILBO register models, MISR signature analysis, and cost accounting."""

from repro.bilbo.register import BILBOMode, BILBORegister
from repro.bilbo.misr import MISR, signature_pair
from repro.bilbo.cost import (
    AreaReport,
    BILBO_CELL_AREA,
    BILBO_DELAY_UNITS,
    CBILBO_CELL_AREA,
    DFF_AREA,
    bilbo_area,
    register_conversion_cost,
    tpg_extra_area_fraction,
)

__all__ = [
    "BILBOMode",
    "BILBORegister",
    "MISR",
    "signature_pair",
    "AreaReport",
    "DFF_AREA",
    "BILBO_CELL_AREA",
    "CBILBO_CELL_AREA",
    "BILBO_DELAY_UNITS",
    "bilbo_area",
    "tpg_extra_area_fraction",
    "register_conversion_cost",
]

"""Cycle-accurate word-level RTL simulation.

Evaluates an RTL circuit clock by clock using each block's ``word_func``.
Used to validate the *register flattening* step of the fault-simulation
flow: in a balanced circuit, replacing registers by wires preserves
per-pattern behaviour exactly (each PO sees the PI vector of ``d`` cycles
ago, where ``d`` is the PI-to-PO sequential length) — the operational
content of 1-step functional testability.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import RTLError
from repro.rtl.circuit import RTLCircuit


class RTLSimulator:
    """Synchronous simulator over an RTL circuit with word functions."""

    def __init__(self, circuit: RTLCircuit, reset_value: int = 0):
        circuit.validate()
        self.circuit = circuit
        for block in circuit.blocks.values():
            if block.word_func is None:
                raise RTLError(f"block {block.name} has no word function")
        self._drivers = circuit.drivers()
        self.register_state: Dict[str, int] = {
            name: reset_value for name in circuit.registers
        }

    def _combinational_values(self, pi_values: Dict[str, int]) -> Dict[int, int]:
        """Settle all nets for the current cycle (registers hold state)."""
        circuit = self.circuit
        values: Dict[int, int] = {}
        for net_index in circuit.primary_inputs:
            name = circuit.nets[net_index].name
            if name not in pi_values:
                raise RTLError(f"missing value for primary input {name}")
            width_mask = (1 << circuit.nets[net_index].width) - 1
            values[net_index] = pi_values[name] & width_mask

        for register in circuit.registers.values():
            values[register.output_net] = self.register_state[register.name]

        resolving: set = set()

        def resolve(net_index: int) -> int:
            if net_index in values:
                return values[net_index]
            if net_index in resolving:
                raise RTLError("combinational cycle during RTL simulation")
            resolving.add(net_index)
            driver = self._drivers[net_index]
            if driver.kind != "block":
                raise RTLError(
                    f"net {circuit.nets[net_index].name} has unresolvable driver"
                )
            block = circuit.blocks[driver.name]
            inputs = [resolve(n) for n in block.input_nets]
            outputs = block.word_func(inputs)
            if len(outputs) != len(block.output_nets):
                raise RTLError(f"block {block.name} returned wrong output count")
            for out_net, value in zip(block.output_nets, outputs):
                mask = (1 << circuit.nets[out_net].width) - 1
                values[out_net] = value & mask
            resolving.discard(net_index)
            return values[net_index]

        for net in range(len(circuit.nets)):
            resolve(net)
        return values

    def step(self, pi_values: Dict[str, int]) -> Dict[str, int]:
        """Apply one PI vector, clock once; returns PO values *before* clock.

        The returned PO words are the settled combinational values of this
        cycle (what the PO registers are about to capture is internal).
        """
        values = self._combinational_values(pi_values)
        outputs = {
            self.circuit.nets[n].name: values[n]
            for n in self.circuit.primary_outputs
        }
        for register in self.circuit.registers.values():
            self.register_state[register.name] = values[register.input_net]
        return outputs

    def run(self, pi_sequence: Sequence[Dict[str, int]]) -> List[Dict[str, int]]:
        """Apply a sequence of PI vectors; returns the PO trace."""
        return [self.step(vector) for vector in pi_sequence]


def flatten_latency(circuit: RTLCircuit) -> int:
    """PI-to-PO sequential depth of the circuit's graph (the pipe latency)."""
    from repro.graph.build import build_circuit_graph
    from repro.graph.paths import sequential_depth

    return sequential_depth(build_circuit_graph(circuit))

"""RTL circuit model: nets, combinational blocks, registers, PIs/POs."""

from repro.rtl.components import CombBlock, Net, RTLRegister
from repro.rtl.circuit import DriverRef, RTLCircuit, RTLStats, SinkRef
from repro.rtl.simulate import RTLSimulator, flatten_latency

__all__ = [
    "Net",
    "CombBlock",
    "RTLRegister",
    "RTLCircuit",
    "RTLStats",
    "DriverRef",
    "SinkRef",
    "RTLSimulator",
    "flatten_latency",
]

"""The RTL circuit container (the paper's CUC).

Holds nets, combinational blocks, registers and PI/PO markings, enforcing
the structural rules of Section 3.1: every net has exactly one driver, and
a block's input/output ports are its ordered net connections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import RTLError
from repro.rtl.components import CombBlock, GateExpander, Net, RTLRegister, WordFunction


@dataclass(frozen=True)
class SinkRef:
    """One consumer of a net."""

    kind: str          # "block" | "register" | "po"
    name: str          # block/register name, or PO net name
    port: int = 0      # input-port index for blocks


@dataclass(frozen=True)
class DriverRef:
    """The producer of a net."""

    kind: str          # "pi" | "block" | "register"
    name: str
    port: int = 0      # output-port index for blocks


class RTLCircuit:
    """A register-transfer level circuit under consideration."""

    def __init__(self, name: str = "cuc"):
        self.name = name
        self.nets: List[Net] = []
        self._net_by_name: Dict[str, int] = {}
        self.blocks: Dict[str, CombBlock] = {}
        self.registers: Dict[str, RTLRegister] = {}
        self.primary_inputs: List[int] = []
        self.primary_outputs: List[int] = []

    # ------------------------------------------------------------------ nets

    def add_net(self, name: str, width: int = 8) -> int:
        """Create a named net; returns its index."""
        if name in self._net_by_name:
            raise RTLError(f"duplicate net name {name!r}")
        net = Net(len(self.nets), name, width)
        self.nets.append(net)
        self._net_by_name[name] = net.index
        return net.index

    def net(self, ref) -> Net:
        """Resolve a net by index or name."""
        if isinstance(ref, str):
            try:
                return self.nets[self._net_by_name[ref]]
            except KeyError:
                raise RTLError(f"no net named {ref!r}") from None
        return self.nets[ref]

    def net_index(self, ref) -> int:
        return self.net(ref).index

    # ----------------------------------------------------------- components

    def add_block(
        self,
        name: str,
        inputs: Sequence,
        outputs: Sequence,
        kind: str = "comb",
        word_func: Optional[WordFunction] = None,
        gate_expander: Optional[GateExpander] = None,
    ) -> CombBlock:
        """Add a combinational block connected to existing nets."""
        if name in self.blocks or name in self.registers:
            raise RTLError(f"duplicate component name {name!r}")
        if not inputs or not outputs:
            raise RTLError(f"block {name} needs at least one input and output")
        block = CombBlock(
            name,
            [self.net_index(n) for n in inputs],
            [self.net_index(n) for n in outputs],
            kind,
            word_func,
            gate_expander,
        )
        self.blocks[name] = block
        return block

    def add_register(self, name: str, input_net, output_net, width: Optional[int] = None) -> RTLRegister:
        """Add a register between two nets (widths must agree)."""
        if name in self.blocks or name in self.registers:
            raise RTLError(f"duplicate component name {name!r}")
        in_net = self.net(input_net)
        out_net = self.net(output_net)
        if in_net.width != out_net.width:
            raise RTLError(
                f"register {name}: width mismatch {in_net.width} vs {out_net.width}"
            )
        if width is not None and width != in_net.width:
            raise RTLError(f"register {name}: declared width {width} != net width")
        register = RTLRegister(name, in_net.width, in_net.index, out_net.index)
        self.registers[name] = register
        return register

    def mark_input(self, net) -> None:
        index = self.net_index(net)
        if index not in self.primary_inputs:
            self.primary_inputs.append(index)

    def mark_output(self, net) -> None:
        index = self.net_index(net)
        if index not in self.primary_outputs:
            self.primary_outputs.append(index)

    def new_input(self, name: str, width: int = 8) -> int:
        index = self.add_net(name, width)
        self.mark_input(index)
        return index

    def new_output(self, name: str, width: int = 8) -> int:
        index = self.add_net(name, width)
        self.mark_output(index)
        return index

    # ------------------------------------------------------------- structure

    def drivers(self) -> Dict[int, DriverRef]:
        """Map net index -> its driver."""
        driver: Dict[int, DriverRef] = {}

        def put(net: int, ref: DriverRef) -> None:
            if net in driver:
                raise RTLError(
                    f"net {self.nets[net].name} driven by both "
                    f"{driver[net].name} and {ref.name}"
                )
            driver[net] = ref

        for net in self.primary_inputs:
            put(net, DriverRef("pi", self.nets[net].name))
        for block in self.blocks.values():
            for port, net in enumerate(block.output_nets):
                put(net, DriverRef("block", block.name, port))
        for register in self.registers.values():
            put(register.output_net, DriverRef("register", register.name))
        return driver

    def sinks(self) -> Dict[int, List[SinkRef]]:
        """Map net index -> its consumers (in deterministic order)."""
        sinks: Dict[int, List[SinkRef]] = {net.index: [] for net in self.nets}
        for block in self.blocks.values():
            for port, net in enumerate(block.input_nets):
                sinks[net].append(SinkRef("block", block.name, port))
        for register in self.registers.values():
            sinks[register.input_net].append(SinkRef("register", register.name))
        for net in self.primary_outputs:
            sinks[net].append(SinkRef("po", self.nets[net].name))
        return sinks

    def validate(self) -> None:
        """Check every net has exactly one driver and at least one sink."""
        driver = self.drivers()
        sinks = self.sinks()
        for net in self.nets:
            if net.index not in driver:
                raise RTLError(f"net {net.name} has no driver")
            if not sinks[net.index]:
                raise RTLError(f"net {net.name} has no sink")
        # Width discipline at block ports is the builder's duty; registers
        # are checked at add time.

    # --------------------------------------------------------------- queries

    def register_widths(self) -> Dict[str, int]:
        return {name: reg.width for name, reg in self.registers.items()}

    def total_register_bits(self) -> int:
        return sum(reg.width for reg in self.registers.values())

    def block_names(self) -> List[str]:
        return sorted(self.blocks)

    def stats(self) -> "RTLStats":
        return RTLStats(
            name=self.name,
            n_blocks=len(self.blocks),
            n_registers=len(self.registers),
            n_register_bits=self.total_register_bits(),
            n_primary_inputs=len(self.primary_inputs),
            n_primary_outputs=len(self.primary_outputs),
        )


@dataclass(frozen=True)
class RTLStats:
    """Headline numbers for an RTL circuit."""

    name: str
    n_blocks: int
    n_registers: int
    n_register_bits: int
    n_primary_inputs: int
    n_primary_outputs: int

"""RTL component definitions (Section 3.1's circuit vocabulary).

A circuit under consideration (CUC) is made of combinational logic blocks,
registers, fanout points, primary inputs/outputs and the nets connecting
them.  Fanout and vacuous blocks are *not* declared here — they are derived
during circuit-graph construction, exactly as the paper introduces them as
modelling artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.errors import RTLError

# A word-level behaviour: input words -> output words.
WordFunction = Callable[[Sequence[int]], Sequence[int]]
# A gate expander: (netlist, input net lists) -> output net lists.
GateExpander = Callable[[object, Sequence[Sequence[int]], str], Sequence[Sequence[int]]]


@dataclass
class Net:
    """A bundle of wires with a single driver and any number of sinks."""

    index: int
    name: str
    width: int

    def __post_init__(self):
        if self.width < 1:
            raise RTLError(f"net {self.name} must have positive width")


@dataclass
class CombBlock:
    """A combinational logic block with ordered input and output ports.

    ``kind`` is a free-form tag ("add8", "mul8", ...); ``word_func`` gives
    word-level behaviour for functional simulation and ``gate_expander``
    lowers the block to gates for fault simulation.  Both are optional —
    purely structural analyses never need them.
    """

    name: str
    input_nets: List[int]
    output_nets: List[int]
    kind: str = "comb"
    word_func: Optional[WordFunction] = None
    gate_expander: Optional[GateExpander] = None

    @property
    def n_input_ports(self) -> int:
        return len(self.input_nets)

    @property
    def n_output_ports(self) -> int:
        return len(self.output_nets)


@dataclass
class RTLRegister:
    """An edge-triggered D register between two nets of equal width."""

    name: str
    width: int
    input_net: int
    output_net: int

    def __post_init__(self):
        if self.width < 1:
            raise RTLError(f"register {self.name} must have positive width")

"""Command-line interface: analyze, make BISTable, design TPGs, self-test.

The library's tool face, mirroring the BITS flow on JSON circuit files
(see ``repro.bits.io_json`` for the schema)::

    python -m repro analyze  circuit.json [--json]
    python -m repro analyze  SCENARIO|netlist.bench [--patterns N]
                             [--threshold P] [--top N] [--json]
    python -m repro bibs     circuit.json [--method exact|greedy|auto] [--json]
    python -m repro tpg      circuit.json [--kernel N] [--json]
    python -m repro selftest circuit.json [--cycles N] [--max-faults N]
                             [--jobs N] [--executor {serial,process,thread}]
                             [--seed N] [--json] [--quiet]
                             [--checkpoint-dir DIR] [--resume]
                             [--shard-timeout S] [--deadline S]
                             [--max-memory SIZE] [--max-patterns N]
                             [--trace-out FILE] [--metrics-out FILE]
    python -m repro export   {c5a2m,c3a2m,c4a4m,figure4,figure9,mac4} out.json
    python -m repro lint     TARGET [TARGET ...] [--json] [--severity S]
                             [--baseline FILE] [--update-baseline]
                             [--bilbo R1,R2] [--polynomial INT]
    python -m repro serve    [--host H] [--port P] [--workers N]
                             [--tenant-quota N] [--max-queued N]
                             [--cache-size N] [--state-dir DIR]
                             [--max-journal-entries N]
                             [--drain-grace S] [--quiet]
    python -m repro telemetry view FILE [--quiet]

``export`` writes the built-in circuits so every other command has
something to chew on out of the box.  Every subcommand accepts ``--json``
and then emits a single machine-readable object on stdout (results use the
unified ``to_json()`` surface of :mod:`repro.results`).  ``selftest
--jobs N`` shards the per-pattern engine run over N workers and
``--executor`` picks the :mod:`repro.exec` backend (results are
bit-identical either way — see ``docs/ENGINE.md`` and
``docs/EXECUTORS.md``); ``--seed`` sets the TPG seed.  The shared engine
flag cluster lives in :mod:`repro.cli_args`.  ``--deadline`` /
``--max-memory`` / ``--max-patterns`` bound the run through
:mod:`repro.guard` (see ``docs/ROBUSTNESS.md``): a tripped limit — or
Ctrl-C / SIGTERM — stops at the next round boundary, flushes any
checkpoint journal, reports ``partial`` results, and exits 130/143
without a traceback.

``lint`` runs the static design-rule checker (:mod:`repro.lint`) over
built-in designs (``figure1``..``figure4``, ``figure9``, ``c17``,
``c5a2m``/``c3a2m``/``c4a4m``, ``mac4``, ``synth1``..``synth4``), group
aliases (``figures``, ``ka_example``, ``iscas``, ``filters``, ``synth``),
or ``.bench``/``.json`` files, and exits 1 when any error-severity finding
is not suppressed by the ``--baseline`` file.  ``--bilbo``/``--polynomial``
force a kernel cut / feedback polynomial so a *proposed* design can be
vetted before it is built.  See ``docs/LINT.md``.

``--trace-out`` / ``--metrics-out`` enable :mod:`repro.telemetry` for the
run and write a Chrome ``trace_event`` file (open in ``chrome://tracing``
or Perfetto) and a Prometheus text-format metrics file.  ``telemetry
view`` inspects and validates any artifact the suite writes — a trace, a
run manifest, or a metrics file — and exits non-zero when the artifact is
malformed (the CI telemetry job is built on this).  See
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from repro.analysis.testability import classify
from repro.bits import io_json
from repro.cli_args import (
    emit_json as _emit_json,
    engine_parent_parser,
    result_payload,
    runconfig_from_args,
    write_telemetry_artifacts,
)
from repro.core.bibs import make_bibs_testable
from repro.core.ka85 import make_ka_testable
from repro.experiments.render import render_table
from repro.graph.build import build_circuit_graph
from repro.graph.model import VertexKind


def _load(path: str):
    circuit = io_json.load(path)
    return circuit, build_circuit_graph(circuit)


def _progress(args, text: str) -> None:
    """Print progress text unless ``--quiet`` asked for silence."""
    if not getattr(args, "quiet", False):
        print(text)


def _resolve_analyze_netlist(target: str):
    """Resolve a testability-analysis target to a netlist, or ``None``.

    Accepts the serve-style short scenario names (``c3a2m``), the full
    scenario names (``c3a2m_kernel``) and ``.bench`` files — everything
    the static analyzer can chew on directly.  ``.json`` circuit files
    keep the structural k-step analysis path instead.
    """
    from repro.library.scenarios import SCENARIOS
    from repro.netlist import bench_io

    if target.endswith(".bench"):
        return bench_io.load(target, validate=False)
    builder = SCENARIOS.get(target) or SCENARIOS.get(f"{target}_kernel")
    return builder() if builder is not None else None


def _analyze_testability(args) -> int:
    """Static SCOAP/COP testability profile for a netlist target."""
    from repro.analysis import DEFAULT_WINDOW, analyze_netlist, scoap
    from repro.errors import ReproError
    from repro.lint import lint_testability

    try:
        netlist = _resolve_analyze_netlist(args.circuit)
    except (OSError, ReproError) as error:
        print(f"error: cannot analyze {args.circuit}: {error}",
              file=sys.stderr)
        return 2
    if netlist is None:
        from repro.library.scenarios import SCENARIOS

        known = ", ".join(sorted(
            n[: -len("_kernel")] for n in SCENARIOS if n.endswith("_kernel")))
        print(f"error: unknown analyze target {args.circuit!r} "
              f"(known scenarios: {known}; or a .bench/.json file)",
              file=sys.stderr)
        return 2
    window = args.patterns if args.patterns else DEFAULT_WINDOW
    profile = analyze_netlist(netlist)
    measures = scoap(netlist)
    report = lint_testability(netlist, profile=profile, window=window)
    doc = profile.to_json(window=window, threshold=args.threshold,
                          top=args.top)
    if args.json:
        _emit_json({
            "kind": "analyze-testability",
            "circuit": netlist.name,
            "profile": doc,
            "hardest_nets": [
                {"net": netlist.net_name(net), "score": score}
                for net, score in measures.hardest_nets(args.top)
            ],
            "lint": report.to_json(),
        })
        return 0
    rows = [
        ("gates", len(netlist.gates)),
        ("collapsed faults", doc["n_faults"]),
        ("TPG window (patterns)", window),
        ("predicted coverage", f"{100 * doc['predicted_coverage']:.2f}%"),
        ("random-resistant faults", doc["n_resistant"]),
        ("statically undetectable", doc["n_undetectable"]),
        ("patterns to "
         f"{100 * doc['coverage_target']:.1f}%",
         doc["expected_patterns_to_target"] or "unreachable"),
    ]
    print(render_table(["property", "value"], rows,
                       title=f"Testability: {netlist.name}"))
    if doc["resistant"]:
        fault_rows = [
            (entry["fault"], f"{entry['detection_probability']:.3g}",
             entry["expected_patterns"] or "inf")
            for entry in doc["resistant"]
        ]
        print(render_table(
            ["fault", "P(detect)", "E[patterns]"], fault_rows,
            title=f"Hardest faults (top {len(fault_rows)})"))
    if report.findings:
        print(report.render_text())
    return 0


def cmd_analyze(args) -> int:
    if not args.circuit.endswith(".json"):
        return _analyze_testability(args)
    circuit, graph = _load(args.circuit)
    report = classify(graph)
    rows = [
        ("blocks", len(circuit.blocks)),
        ("registers", len(circuit.registers)),
        ("register bits", circuit.total_register_bits()),
        ("fanout vertices", len(graph.vertices_of_kind(VertexKind.FANOUT))),
        ("vacuous vertices", len(graph.vertices_of_kind(VertexKind.VACUOUS))),
        ("acyclic", report.acyclic),
        ("balanced", report.balanced),
        ("k-step functionally testable", report.k_step),
    ]
    if report.worst_witness is not None:
        witness = report.worst_witness
        rows.append((
            "worst imbalance",
            f"{witness.source} -> {witness.target}: "
            f"{witness.min_length}..{witness.max_length}",
        ))
    if args.json:
        _emit_json({
            "kind": "analyze",
            "circuit": circuit.name,
            "properties": {str(k): v for k, v in rows},
        })
        return 0
    print(render_table(["property", "value"], rows,
                       title=f"Analysis: {circuit.name}"))
    return 0


def cmd_bibs(args) -> int:
    circuit, graph = _load(args.circuit)
    design = make_bibs_testable(graph, method=args.method)
    kernels = [
        {
            "name": kernel.name,
            "blocks": sorted(kernel.logic_blocks),
            "tpg_registers": sorted(kernel.tpg_registers),
            "sa_registers": sorted(kernel.sa_registers),
            "input_width": kernel.input_width,
            "sequential_depth": kernel.sequential_depth,
        }
        for kernel in design.kernels
    ]
    payload: Dict[str, Any] = {
        "kind": "bibs",
        "circuit": circuit.name,
        "n_bilbo_registers": design.n_bilbo_registers,
        "n_bilbo_flipflops": design.n_bilbo_flipflops,
        "bilbo_registers": sorted(design.bilbo_registers),
        "maximal_delay": design.maximal_delay(),
        "kernels": kernels,
    }
    if args.compare_ka:
        ka = make_ka_testable(graph).design
        payload["ka85"] = {
            "n_bilbo_registers": ka.n_bilbo_registers,
            "n_bilbo_flipflops": ka.n_bilbo_flipflops,
            "maximal_delay": ka.maximal_delay(),
        }
    if args.json:
        _emit_json(payload)
        return 0
    print(f"BILBO registers ({design.n_bilbo_registers}, "
          f"{design.n_bilbo_flipflops} FFs): {design.bilbo_registers}")
    print(f"maximal delay: {design.maximal_delay()} time units")
    rows = []
    for kernel in design.kernels:
        rows.append((
            kernel.name,
            ",".join(kernel.logic_blocks) or "<transport>",
            ",".join(sorted(kernel.tpg_registers)),
            ",".join(sorted(kernel.sa_registers)),
            kernel.input_width,
            kernel.sequential_depth,
        ))
    print(render_table(
        ["kernel", "blocks", "TPG", "SA", "M", "depth"], rows,
        title=f"BIBS design: {circuit.name}",
    ))
    if args.compare_ka:
        ka = payload["ka85"]
        print(f"\nKA-85 for contrast: {ka['n_bilbo_registers']} registers "
              f"({ka['n_bilbo_flipflops']} FFs), maximal delay "
              f"{ka['maximal_delay']}")
    return 0


def cmd_tpg(args) -> int:
    from repro.tpg.mc_tpg import mc_tpg
    from repro.tpg.verify import verify_design

    circuit, graph = _load(args.circuit)
    design = make_bibs_testable(graph)
    kernels = [k for k in design.kernels if k.logic_blocks]
    if not 0 <= args.kernel < len(kernels):
        print(f"error: kernel index out of range (0..{len(kernels) - 1})",
              file=sys.stderr)
        return 2
    kernel = kernels[args.kernel]
    spec = kernel.to_kernel_spec()
    tpg = mc_tpg(spec)
    payload: Dict[str, Any] = {
        "kind": "tpg",
        "circuit": circuit.name,
        "kernel": kernel.name,
        "lfsr_stages": tpg.lfsr_stages,
        "n_flipflops": tpg.n_flipflops,
        "n_extra_flipflops": tpg.n_extra_flipflops,
        "test_time": tpg.test_time(),
    }
    verified = True
    if tpg.lfsr_stages <= args.verify_limit:
        verdicts = verify_design(tpg)
        payload["cones"] = [
            {
                "cone": str(verdict.cone),
                "distinct_patterns": verdict.distinct_patterns,
                "expected_patterns": verdict.expected_patterns,
                "exhaustive": verdict.exhaustive,
            }
            for verdict in verdicts
        ]
        verified = all(v.exhaustive for v in verdicts)
    if args.json:
        _emit_json(payload)
        return 0 if verified else 1
    print(f"kernel {kernel.name}: M = {tpg.lfsr_stages}, "
          f"{tpg.n_flipflops} FFs ({tpg.n_extra_flipflops} extra), "
          f"test time {tpg.test_time()} cycles")
    print(tpg.layout())
    if "cones" in payload:
        for cone in payload["cones"]:
            status = "OK" if cone["exhaustive"] else "FAIL"
            print(f"  cone {cone['cone']}: {cone['distinct_patterns']}/"
                  f"{cone['expected_patterns']} [{status}]")
    else:
        print(f"  (skipping exhaustive verification: M > {args.verify_limit})")
    return 0 if verified else 1


def cmd_selftest(args) -> int:
    from repro.bist.session import BISTSession
    from repro.errors import LintError, SimulationError
    from repro.guard import (
        Budget,
        CancelToken,
        exit_code,
        guard_summary,
        signal_scope,
    )

    if args.seed == 0:
        print("error: --seed must be non-zero (an all-zero LFSR state "
              "never advances)", file=sys.stderr)
        return 2
    try:
        budget = Budget.from_cli(args.deadline, args.max_memory,
                                 args.max_patterns)
    except SimulationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.trace_out or args.metrics_out:
        from repro import telemetry

        telemetry.enable()
    circuit, graph = _load(args.circuit)
    design = make_bibs_testable(graph)
    kernel = next(k for k in design.kernels if k.logic_blocks)
    try:
        session = BISTSession(circuit, kernel, seed=args.seed)
    except SimulationError as error:
        print(f"error: {error}", file=sys.stderr)
        print("hint: self-test needs gate-level block behaviour; circuits "
              "exported from the datapath library (add/mul kinds) have it, "
              "purely structural figures do not.", file=sys.stderr)
        return 2
    cycles = args.cycles or min(session.recommended_cycles(), 1 << 14)
    faults = session.kernel_fault_universe()
    if args.max_faults and len(faults) > args.max_faults:
        faults = faults[: args.max_faults]
    if budget is not None:
        budget.arm()  # the deadline spans both measurements below
    token = CancelToken()
    config = runconfig_from_args(args, budget=budget, cancel=token)
    try:
        with signal_scope(token):
            result = session.run(cycles, faults=faults,
                                 budget=budget, cancel=token)
            pattern_result = None
            engine_requested = (args.jobs is not None
                                or args.executor is not None)
            if engine_requested and not token.cancelled:
                # Align the run length with the pattern budget up front (the
                # engine's cap only stops at round boundaries, so a cap far
                # below the requested cycles would otherwise stop at 0).
                pattern_cap = cycles
                if budget is not None and budget.max_patterns is not None:
                    pattern_cap = min(cycles, budget.max_patterns)
                pattern_result = session.pattern_coverage(
                    max_patterns=pattern_cap, config=config,
                )
    except LintError as error:
        # The same structured document repro.serve answers with HTTP 422:
        # the lint findings, not a traceback.
        if args.json:
            _emit_json(error.payload())
        else:
            print(f"error: {error}", file=sys.stderr)
            for finding in error.findings:
                print(f"  [{finding.severity}] {finding.rule} "
                      f"{finding.location}: {finding.message}",
                      file=sys.stderr)
        return 2
    stop_reason = result.stop_reason
    if stop_reason is None and pattern_result is not None:
        stop_reason = pattern_result.stop_reason
    partial = result.partial or bool(pattern_result and pattern_result.partial)
    guard = guard_summary(budget, token, stop_reason=stop_reason,
                          partial=partial)
    testability = getattr(pattern_result, "testability", None)
    if args.trace_out or args.metrics_out:
        shards = None
        if pattern_result is not None:
            shards = [shard.to_json() for shard in pattern_result.shards]
        write_telemetry_artifacts(
            args,
            config={
                "command": "selftest", "circuit": circuit.name,
                "kernel": kernel.name, "cycles": cycles, "seed": args.seed,
                "jobs": args.jobs, "executor": args.executor,
                "max_faults": args.max_faults,
            },
            shards=shards,
            guard=guard,
            announce=lambda text: _progress(args, text),
            testability=testability,
        )
    if args.json:
        payload = result_payload(
            result,
            context={"circuit": circuit.name, "kernel": kernel.name,
                     "seed": args.seed},
            guard=guard,
        )
        if pattern_result is not None:
            payload["pattern_coverage"] = pattern_result.to_json()
        _emit_json(payload)
        return exit_code(token)
    _progress(args, f"session: {cycles} cycles, {len(faults)} kernel faults")
    for name, signature in result.golden_signatures.items():
        _progress(args, f"  golden signature {name}: {signature:#x}")
    _progress(args, f"  detected {len(result.detected)} "
                    f"({100 * result.coverage:.1f}% of the fault cone)")
    if pattern_result is not None:
        _progress(args, f"  per-pattern (pre-MISR) coverage: "
                        f"{100 * pattern_result.coverage():.1f}% over "
                        f"{pattern_result.n_patterns} patterns "
                        f"[engine, jobs={config.execution.effective_jobs}]")
    if testability is not None:
        _progress(args, f"  static prediction: "
                        f"{100 * testability['predicted_coverage']:.1f}% "
                        f"(delta {100 * testability['delta']:+.1f}pp, "
                        f"{testability['n_resistant']} random-resistant, "
                        f"{testability['n_undetectable']} undetectable)")
    if partial:
        _progress(args, f"  partial run (stopped: {stop_reason})")
    if token.cancelled:
        where = (f", checkpoint saved to {args.checkpoint_dir}"
                 if args.checkpoint_dir else "")
        print(f"interrupted{where}", file=sys.stderr)
    return exit_code(token)


def cmd_export(args) -> int:
    from repro.datapath.filters import all_filters
    from repro.library.figures import figure4
    from repro.library.ka_example import figure9

    from repro.datapath.compiler import Add, Mul, Var, compile_datapath

    builders = {name: (lambda n=name: all_filters()[n].circuit)
                for name in ("c5a2m", "c3a2m", "c4a4m")}
    builders["figure4"] = figure4
    builders["figure9"] = figure9
    builders["mac4"] = lambda: compile_datapath(
        [("o", Add(Mul(Var("a"), Var("b")), Var("c")))], "mac4", width=4
    ).circuit
    circuit = builders[args.name]()
    io_json.dump(circuit, args.output)
    if args.json:
        _emit_json({"kind": "export", "name": args.name, "output": args.output})
        return 0
    print(f"wrote {args.name} to {args.output}")
    return 0


def _lint_builders() -> Dict[str, Any]:
    """Named lint targets: name -> ("circuit" | "netlist", builder)."""
    from repro.datapath.compiler import Add, Mul, Var, compile_datapath
    from repro.datapath.filters import all_filters
    from repro.library.figures import figure1, figure2, figure3, figure4
    from repro.library.iscas import c17
    from repro.library.ka_example import figure9
    from repro.library.synth import random_datapath

    builders: Dict[str, Any] = {
        "figure1": ("circuit", figure1),
        "figure2": ("circuit", figure2),
        "figure3": ("circuit", figure3),
        "figure4": ("circuit", figure4),
        "figure9": ("circuit", figure9),
        "c17": ("netlist", c17),
    }
    for name in ("c5a2m", "c3a2m", "c4a4m"):
        builders[name] = (
            "circuit", lambda n=name: all_filters()[n].circuit)
    builders["mac4"] = ("circuit", lambda: compile_datapath(
        [("o", Add(Mul(Var("a"), Var("b")), Var("c")))], "mac4", width=4
    ).circuit)
    for seed in (1, 2, 3, 4):
        builders[f"synth{seed}"] = (
            "circuit", lambda s=seed: random_datapath(s).circuit)
    return builders


#: Group aliases expanding to several named targets (the CI lint sweep).
LINT_GROUPS = {
    "figures": ("figure1", "figure2", "figure3", "figure4"),
    "ka_example": ("figure9",),
    "iscas": ("c17",),
    "filters": ("c5a2m", "c3a2m", "c4a4m"),
    "synth": ("synth1", "synth2", "synth3", "synth4"),
}


def cmd_lint(args) -> int:
    from repro.errors import ReproError
    from repro.lint import (
        lint_circuit,
        lint_netlist,
        load_baseline,
        write_baseline,
    )
    from repro.netlist import bench_io

    builders = _lint_builders()
    names: List[str] = []
    for target in args.targets:
        names.extend(LINT_GROUPS.get(target, (target,)))
    bilbo = None
    if args.bilbo:
        bilbo = [r.strip() for r in args.bilbo.split(",") if r.strip()]
    if (bilbo or args.polynomial is not None) and len(names) != 1:
        print("error: --bilbo/--polynomial apply to exactly one target",
              file=sys.stderr)
        return 2

    reports = []
    for name in names:
        try:
            if name in builders:
                kind, build = builders[name]
                if kind == "netlist":
                    report = lint_netlist(build())
                else:
                    report = lint_circuit(
                        build(), bilbo=bilbo, polynomial=args.polynomial)
            elif name.endswith(".bench"):
                report = lint_netlist(bench_io.load(name, validate=False))
            elif name.endswith(".json"):
                report = lint_circuit(
                    io_json.load(name), bilbo=bilbo,
                    polynomial=args.polynomial)
            else:
                known = ", ".join(sorted([*builders, *LINT_GROUPS]))
                print(f"error: unknown lint target {name!r} "
                      f"(known: {known}; or a .bench/.json path)",
                      file=sys.stderr)
                return 2
        except (OSError, ReproError) as error:
            print(f"error: cannot lint {name}: {error}", file=sys.stderr)
            return 2
        if args.severity:
            report = report.filtered(args.severity)
        reports.append(report)

    if args.update_baseline:
        if not args.baseline:
            print("error: --update-baseline requires --baseline FILE",
                  file=sys.stderr)
            return 2
        count = write_baseline(args.baseline, reports)
        _progress(args, f"wrote baseline with {count} suppression(s) "
                        f"to {args.baseline}")
    if args.baseline:
        try:
            suppress = load_baseline(args.baseline)
        except (OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        reports = [r.apply_baseline(suppress) for r in reports]

    n_errors = sum(len(r.errors) for r in reports)
    if args.json:
        _emit_json({
            "kind": "lint",
            "targets": [r.target for r in reports],
            "n_errors": n_errors,
            "reports": [r.to_json() for r in reports],
        })
    else:
        for report in reports:
            print(report.render_text())
    return 1 if n_errors else 0


def cmd_serve(args) -> int:
    """Run the BIST-as-a-service HTTP endpoint (``repro-bist serve``).

    Telemetry is enabled unconditionally — ``GET /metrics`` is part of the
    service API, and the ``cache.hit``/``cache.miss`` counters it exposes
    are how operators (and the load benchmark) observe the result cache.
    The announce line (``serving on http://host:port``) is the machine
    interface for wrappers that bind ``--port 0``: it is flushed before
    the first request can arrive.
    """
    import asyncio
    import tempfile

    from repro import telemetry
    from repro.serve import BistService

    telemetry.enable()
    if args.peers:
        from repro.exec.remote import set_default_peers

        set_default_peers(args.peers)
    state_dir = args.state_dir or tempfile.mkdtemp(prefix="repro-serve-")
    service = BistService(
        state_dir,
        workers=args.workers,
        tenant_quota=args.tenant_quota,
        max_queued=args.max_queued,
        cache_size=args.cache_size,
        drain_grace=args.drain_grace,
        max_journal_entries=args.max_journal_entries,
    )

    def announce(text: str) -> None:
        if not args.quiet:
            print(text, flush=True)

    return asyncio.run(service.run(args.host, args.port, announce=announce))


def cmd_worker(args) -> int:
    """Run a remote-executor worker agent (``repro worker``).

    The announce line (``worker listening on HOST:PORT``) is the machine
    interface for wrappers that bind ``--listen host:0``: it is flushed
    before the first coordinator can connect.  SIGTERM/SIGINT stop the
    agent cleanly with the conventional 143/130 exit codes.

    ``--respawn`` runs the agent as a *supervised child* restarted
    whenever it dies — the harness the chaos suites need, since hard
    chaos (``crash``/``node_down``) kills the agent process by design and
    later runs still expect a live peer on the same port.
    """
    from repro.guard.cancel import CancelToken, exit_code, signal_scope

    host, sep, port_text = args.listen.rpartition(":")
    if not sep or not host:
        print(f"--listen {args.listen!r} must look like HOST:PORT",
              file=sys.stderr)
        return 2
    try:
        port = int(port_text)
    except ValueError:
        print(f"--listen port {port_text!r} is not an int", file=sys.stderr)
        return 2

    token = CancelToken()
    if args.respawn:
        if port == 0:
            # Each respawned child would bind a fresh ephemeral port and
            # strand every coordinator that learned the old one.
            print("--respawn requires an explicit port (not 0)",
                  file=sys.stderr)
            return 2
        import subprocess

        with signal_scope(token):
            while not token.cancelled:
                child = subprocess.Popen([
                    sys.executable, "-m", "repro", "worker",
                    "--listen", f"{host}:{port}",
                    *(["--quiet"] if args.quiet else []),
                ])
                while child.poll() is None:
                    if token.wait(0.2):
                        child.terminate()
                        child.wait()
                        break
                if not token.cancelled and not args.quiet:
                    print(
                        f"worker on {host}:{port} exited "
                        f"(code {child.returncode}); respawning",
                        flush=True,
                    )
        return exit_code(token)

    import threading

    from repro.exec.agent import WorkerAgent

    agent = WorkerAgent(host, port)
    bound_host, bound_port = agent.start()
    if not args.quiet:
        print(f"worker listening on {bound_host}:{bound_port}", flush=True)
    with signal_scope(token):
        # Serve on a helper thread so the main thread can watch the token
        # (signal handlers only interrupt the main thread's waits).
        server = threading.Thread(target=agent.serve_forever, daemon=True)
        server.start()
        while server.is_alive():
            if token.wait(0.2):
                agent.shutdown()
                break
        server.join(timeout=2.0)
    return exit_code(token)


def cmd_telemetry(args) -> int:
    """Inspect and validate a telemetry artifact (``telemetry view``).

    Detects the format from the content — a Chrome ``trace_event`` file, a
    run manifest, or a Prometheus text-format metrics file — and emits one
    JSON summary through :func:`_emit_json`.  Exits 1 when the artifact is
    structurally invalid, which is what the CI telemetry job keys on.
    """
    from repro.telemetry import export as tele_export
    from repro.telemetry.manifest import MANIFEST_KIND, RunManifest

    try:
        with open(args.file) as handle:
            text = handle.read()
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        doc: Any = json.loads(text)
    except ValueError:
        doc = None

    payload: Dict[str, Any] = {"kind": "telemetry-view", "file": args.file}
    if isinstance(doc, dict) and "traceEvents" in doc:
        errors = tele_export.validate_chrome_trace(doc)
        events = doc.get("traceEvents", [])
        spans = [e for e in events
                 if isinstance(e, dict) and e.get("ph") == "X"]
        names: Dict[str, int] = {}
        for event in spans:
            name = event.get("name", "?")
            names[name] = names.get(name, 0) + 1
        payload.update({
            "format": "chrome-trace",
            "valid": not errors,
            "errors": errors,
            "n_events": len(events),
            "n_spans": len(spans),
            "span_names": names,
            "pids": sorted({e.get("pid") for e in spans
                            if isinstance(e.get("pid"), int)}),
            "manifest": doc.get("otherData", {}).get("manifest") is not None,
        })
    elif isinstance(doc, dict) and doc.get("kind") == MANIFEST_KIND:
        try:
            manifest = RunManifest.from_json(doc)
        except (ValueError, TypeError) as error:
            payload.update({
                "format": "run-manifest", "valid": False,
                "errors": [str(error)],
            })
        else:
            payload.update({
                "format": "run-manifest",
                "valid": True,
                "errors": [],
                "config_fingerprint": manifest.fingerprint,
                "git": manifest.git,
                "n_spans": len(manifest.spans),
                "n_shards": len(manifest.shards),
                "counters": manifest.metrics.get("counters", {}),
            })
    elif doc is None:
        try:
            samples = tele_export.parse_prometheus_text(text)
        except ValueError as error:
            payload.update({
                "format": "prometheus", "valid": False,
                "errors": [str(error)],
            })
        else:
            payload.update({
                "format": "prometheus",
                "valid": True,
                "errors": [],
                "n_samples": len(samples),
                "samples": samples,
            })
    else:
        payload.update({
            "format": "unknown", "valid": False,
            "errors": ["unrecognized telemetry artifact"],
        })
    if not getattr(args, "quiet", False):
        _emit_json(payload)
    return 0 if payload["valid"] else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_json_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument("--json", action="store_true",
                       help="emit one machine-readable JSON object on stdout")

    p = sub.add_parser(
        "analyze",
        help="balance/k-step analysis (.json) or static SCOAP/COP "
             "testability (scenario / .bench)",
    )
    p.add_argument("circuit",
                   help="a .json circuit file (structural k-step "
                        "analysis), or a scenario name / .bench netlist "
                        "(static testability profile — docs/TESTABILITY.md)")
    p.add_argument("--patterns", type=int, default=0, metavar="N",
                   help="TPG window for the testability profile "
                        "(default: 65536)")
    p.add_argument("--threshold", type=float, default=None, metavar="P",
                   help="detection-probability bound for the "
                        "random-resistant ranking (default: 1/patterns)")
    p.add_argument("--top", type=int, default=10, metavar="N",
                   help="resistant faults / hardest nets to list "
                        "(default: 10)")
    add_json_flag(p)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("bibs", help="BIBS BILBO selection and kernels")
    p.add_argument("circuit")
    p.add_argument("--method", default="auto",
                   choices=("auto", "exact", "greedy"))
    p.add_argument("--compare-ka", action="store_true")
    add_json_flag(p)
    p.set_defaults(func=cmd_bibs)

    p = sub.add_parser("tpg", help="SC_TPG/MC_TPG design for a kernel")
    p.add_argument("circuit")
    p.add_argument("--kernel", type=int, default=0)
    p.add_argument("--verify-limit", type=int, default=14)
    add_json_flag(p)
    p.set_defaults(func=cmd_tpg)

    p = sub.add_parser("selftest", help="gate-level BIST session",
                       parents=[engine_parent_parser()])
    p.add_argument("circuit")
    p.add_argument("--cycles", type=int, default=0)
    p.add_argument("--max-faults", type=int, default=256)
    p.add_argument("--seed", type=int, default=1, help="TPG seed (non-zero)")
    add_json_flag(p)
    p.set_defaults(func=cmd_selftest)

    p = sub.add_parser("export", help="write a built-in circuit as JSON")
    p.add_argument("name", choices=("c5a2m", "c3a2m", "c4a4m",
                                    "figure4", "figure9", "mac4"))
    p.add_argument("output")
    add_json_flag(p)
    p.set_defaults(func=cmd_export)

    p = sub.add_parser(
        "lint",
        help="static design-rule checks (netlist/structure/TPG rules)",
    )
    p.add_argument("targets", nargs="+", metavar="TARGET",
                   help="built-in design, group alias (figures, ka_example, "
                        "iscas, filters, synth), or a .bench/.json file")
    p.add_argument("--severity", default=None,
                   choices=("error", "warning", "info"),
                   help="report only findings at least this severe")
    p.add_argument("--baseline", default=None, metavar="FILE",
                   help="suppress findings fingerprinted in this baseline "
                        "file; exit 1 only on new errors")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite --baseline FILE accepting every current "
                        "finding")
    p.add_argument("--bilbo", default=None, metavar="R1,R2",
                   help="force the kernel cut at these BILBO registers "
                        "(single circuit target only)")
    p.add_argument("--polynomial", type=lambda s: int(s, 0), default=None,
                   help="force the LFSR feedback polynomial (int, any base) "
                        "so lint vets a proposed TPG")
    add_json_flag(p)
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "serve",
        help="run the BIST-as-a-service HTTP endpoint (docs/SERVE.md)",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default: loopback only)")
    p.add_argument("--port", type=int, default=8734,
                   help="TCP port; 0 picks a free port (announced on "
                        "stdout as 'serving on http://HOST:PORT')")
    p.add_argument("--workers", type=int, default=2, metavar="N",
                   help="concurrent engine runs (worker tasks)")
    p.add_argument("--tenant-quota", type=int, default=2, metavar="N",
                   help="max concurrently running jobs per tenant")
    p.add_argument("--max-queued", type=int, default=64, metavar="N",
                   help="max jobs waiting in the queue before submissions "
                        "get HTTP 429")
    p.add_argument("--cache-size", type=int, default=128, metavar="N",
                   help="result-cache entries (LRU, keyed by the "
                        "checkpoint run key)")
    p.add_argument("--state-dir", default=None, metavar="DIR",
                   help="journal/state directory (default: a fresh temp "
                        "dir; reuse one to resume drained jobs)")
    p.add_argument("--max-journal-entries", type=int, default=None,
                   metavar="N",
                   help="bound the on-disk checkpoint journal to the "
                        "newest N completed run-key entries (LRU sweep; "
                        "default: unbounded)")
    p.add_argument("--drain-grace", type=float, default=2.0,
                   metavar="SECONDS",
                   help="seconds the HTTP endpoint stays up after SIGTERM "
                        "drains in-flight jobs")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the announce/drain lines")
    p.add_argument("--peers", default=None, metavar="HOST:PORT,HOST:PORT",
                   help="worker-agent peer set for jobs submitted with "
                        "\"executor\": \"remote\" (also via $REPRO_PEERS; "
                        "see docs/DISTRIBUTED.md)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "worker",
        help="run a remote-executor worker agent (docs/DISTRIBUTED.md)",
    )
    p.add_argument("--listen", default="127.0.0.1:0", metavar="HOST:PORT",
                   help="bind address; port 0 picks a free port (announced "
                        "on stdout as 'worker listening on HOST:PORT')")
    p.add_argument("--respawn", action="store_true",
                   help="supervise the agent in a child process and restart "
                        "it whenever it dies (requires an explicit port)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the announce/respawn lines")
    p.set_defaults(func=cmd_worker)

    p = sub.add_parser(
        "telemetry",
        help="inspect/validate telemetry artifacts (traces, metrics, "
             "manifests)",
    )
    tele_sub = p.add_subparsers(dest="telemetry_command", required=True)
    p = tele_sub.add_parser("view", help="summarize and validate one "
                                         "telemetry artifact")
    p.add_argument("file")
    p.add_argument("--quiet", action="store_true",
                   help="validate only; no output, just the exit code")
    p.set_defaults(func=cmd_telemetry)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        # Ctrl-C outside a guard's signal_scope (simulating commands catch
        # it there and drain cleanly): one line, conventional exit code,
        # never a traceback.
        checkpoint_dir = getattr(args, "checkpoint_dir", None)
        where = f", checkpoint saved to {checkpoint_dir}" if checkpoint_dir else ""
        print(f"interrupted{where}", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # stdout was closed early (e.g. piped into head); not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    raise SystemExit(main())

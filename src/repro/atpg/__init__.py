"""Combinational ATPG (PODEM) for redundancy classification."""

from repro.atpg.podem import PodemResult, PodemStatus, classify_faults, podem

__all__ = ["podem", "PodemResult", "PodemStatus", "classify_faults"]

"""PODEM combinational ATPG.

The evaluation in the paper reports "100% fault coverage of detectable
faults" — which requires telling *undetectable (redundant)* faults apart
from merely hard-to-hit ones.  After random-pattern fault simulation
saturates, this PODEM implementation decides each leftover fault:

* ``DETECTED``  — a test pattern exists (returned);
* ``REDUNDANT`` — the full implicit search space is exhausted, no test;
* ``ABORTED``   — backtrack limit hit (counted as detectable-unknown).

Classic Goel-style PODEM: objectives, backtrace to a primary input,
three-valued (0/1/X) dual-machine implication, D-frontier tracking,
chronological backtracking over PI assignments.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faultsim.faults import Fault
from repro.netlist.gates import GateType
from repro.netlist.levelize import levelize
from repro.netlist.netlist import Netlist

X = None  # unknown value in the 3-valued domain {0, 1, None}


class PodemStatus(enum.Enum):
    DETECTED = "detected"
    REDUNDANT = "redundant"
    ABORTED = "aborted"


@dataclass
class PodemResult:
    status: PodemStatus
    fault: Fault
    test: Optional[Dict[int, int]] = None  # PI net -> 0/1
    backtracks: int = 0


def _eval3(gtype: GateType, inputs: Sequence[Optional[int]]) -> Optional[int]:
    """Three-valued gate evaluation."""
    base = gtype.base
    if base is GateType.AND:
        if any(v == 0 for v in inputs):
            value: Optional[int] = 0
        elif any(v is X for v in inputs):
            value = X
        else:
            value = 1
    elif base is GateType.OR:
        if any(v == 1 for v in inputs):
            value = 1
        elif any(v is X for v in inputs):
            value = X
        else:
            value = 0
    elif base is GateType.XOR:
        if any(v is X for v in inputs):
            value = X
        else:
            parity = 0
            for v in inputs:
                parity ^= v
            value = parity
    elif base is GateType.BUF:
        value = inputs[0]
    elif base is GateType.CONST0:
        value = 0
    else:  # CONST1
        value = 1
    if value is X:
        return X
    return value ^ 1 if gtype.is_inverting else value


class _Machine:
    """Dual-machine 3-valued simulator with one injected fault."""

    def __init__(self, netlist: Netlist, fault: Fault):
        self.netlist = netlist
        self.fault = fault
        self.order = levelize(netlist)

    def simulate(self, assignment: Dict[int, int]) -> Tuple[Dict[int, Optional[int]], Dict[int, Optional[int]]]:
        """(good values, faulty values) for a partial PI assignment."""
        good: Dict[int, Optional[int]] = {}
        bad: Dict[int, Optional[int]] = {}
        fault = self.fault
        for net in self.netlist.primary_inputs:
            value = assignment.get(net, X)
            good[net] = value
            bad[net] = value
        if fault.is_stem and fault.net in bad:
            bad[fault.net] = fault.stuck_at
        for gate_index in self.order:
            gate = self.netlist.gates[gate_index]
            good_inputs = [good.get(n, X) for n in gate.inputs]
            good[gate.output] = _eval3(gate.gtype, good_inputs)
            bad_inputs = [bad.get(n, X) for n in gate.inputs]
            if (not fault.is_stem) and fault.gate_index == gate_index:
                bad_inputs[fault.pin] = fault.stuck_at
            bad[gate.output] = _eval3(gate.gtype, bad_inputs)
            if fault.is_stem and gate.output == fault.net:
                bad[gate.output] = fault.stuck_at
        return good, bad


def _detected(netlist: Netlist, good, bad) -> bool:
    for po in netlist.primary_outputs:
        g, b = good.get(po, X), bad.get(po, X)
        if g is not X and b is not X and g != b:
            return True
    return False


def _possibly_detectable(netlist: Netlist, fault: Fault, good, bad) -> bool:
    """Cheap pruning: can the fault still be activated and propagated?"""
    # Activation: the good value at the fault site must (be able to) differ
    # from the stuck value.
    if fault.is_stem:
        site_good = good.get(fault.net, X)
    else:
        site_good = good.get(fault.net, X)
    if site_good is not X and site_good == fault.stuck_at:
        return False
    # Propagation: some PO must still carry a difference or an X in the
    # faulty/good pair downstream.  Conservative check: any PO where the
    # pair is not yet provably equal.
    for po in netlist.primary_outputs:
        g, b = good.get(po, X), bad.get(po, X)
        if g is X or b is X or g != b:
            return True
    return False


def _objective(netlist: Netlist, fault: Fault, good, bad) -> Optional[Tuple[int, int]]:
    """Next (net, value) objective: activate the fault, then advance the
    D-frontier."""
    site_good = good.get(fault.net, X)
    if site_good is X:
        return fault.net, fault.stuck_at ^ 1
    # Fault is activated; find a D-frontier gate: output not yet resolved in
    # both machines, some input carrying a definite good/bad difference.
    for gate_index, gate in enumerate(netlist.gates):
        if good.get(gate.output, X) is not X and bad.get(gate.output, X) is not X:
            continue
        has_difference = False
        for pin, net in enumerate(gate.inputs):
            g = good.get(net, X)
            b = bad.get(net, X)
            if (not fault.is_stem) and fault.gate_index == gate_index and fault.pin == pin:
                b = fault.stuck_at
            if g is not X and b is not X and g != b:
                has_difference = True
                break
        if not has_difference:
            continue
        # Set an X input to the non-controlling value.
        from repro.netlist.gates import CONTROLLING_VALUE

        control = CONTROLLING_VALUE.get(gate.gtype)
        for net in gate.inputs:
            if good.get(net, X) is X:
                want = (control ^ 1) if control is not None else 0
                return net, want
    return None


def _backtrace(netlist: Netlist, good, net: int, value: int) -> Optional[Tuple[int, int]]:
    """Walk an objective back to an unassigned primary input."""
    pis = set(netlist.primary_inputs)
    current, want = net, value
    for _ in range(len(netlist.gates) + len(pis) + 1):
        if current in pis:
            if good.get(current, X) is X:
                return current, want
            return None
        driver = netlist.driver_of(current)
        if driver is None:
            return None
        gate = netlist.gates[driver]
        if gate.gtype in (GateType.CONST0, GateType.CONST1):
            return None
        if gate.gtype.is_inverting:
            want ^= 1
        x_inputs = [n for n in gate.inputs if good.get(n, X) is X]
        if not x_inputs:
            return None
        # Pursue the first X input; for AND/OR the wanted value carries
        # through unchanged (non-controlling to satisfy 1/0 respectively,
        # controlling to force the output), for XOR it is a free choice.
        current = x_inputs[0]
    return None


def podem(netlist: Netlist, fault: Fault, max_backtracks: int = 5000) -> PodemResult:
    """Run PODEM for one fault."""
    machine = _Machine(netlist, fault)
    assignment: Dict[int, int] = {}
    decisions: List[Tuple[int, bool]] = []  # (pi net, tried_both)
    backtracks = 0

    while True:
        good, bad = machine.simulate(assignment)
        if _detected(netlist, good, bad):
            test = {
                net: assignment.get(net, 0) for net in netlist.primary_inputs
            }
            return PodemResult(PodemStatus.DETECTED, fault, test, backtracks)
        feasible = _possibly_detectable(netlist, fault, good, bad)
        target: Optional[Tuple[int, int]] = None
        if feasible:
            objective = _objective(netlist, fault, good, bad)
            if objective is not None:
                target = _backtrace(netlist, good, objective[0], objective[1])
        if feasible and target is not None:
            pi, value = target
            assignment[pi] = value
            decisions.append((pi, False))
            continue
        # Dead end: backtrack.
        while decisions:
            pi, tried_both = decisions.pop()
            if tried_both:
                del assignment[pi]
                continue
            assignment[pi] ^= 1
            decisions.append((pi, True))
            backtracks += 1
            break
        else:
            return PodemResult(PodemStatus.REDUNDANT, fault, None, backtracks)
        if backtracks > max_backtracks:
            return PodemResult(PodemStatus.ABORTED, fault, None, backtracks)


def classify_faults(
    netlist: Netlist,
    faults: Sequence[Fault],
    max_backtracks: int = 5000,
) -> Tuple[List[Fault], Dict[Fault, Dict[int, int]], List[Fault]]:
    """(redundant, tests for detectable, aborted) over a fault list."""
    redundant: List[Fault] = []
    tests: Dict[Fault, Dict[int, int]] = {}
    aborted: List[Fault] = []
    for fault in faults:
        result = podem(netlist, fault, max_backtracks)
        if result.status is PodemStatus.REDUNDANT:
            redundant.append(fault)
        elif result.status is PodemStatus.DETECTED:
            tests[fault] = result.test or {}
        else:
            aborted.append(fault)
    return redundant, tests, aborted

"""repro.guard — run governance: deadlines, memory ceilings, cancellation.

Every long-running entry point in the repo (``engine.simulate``,
``FaultSimulator.run``, ``BISTSession``, the Table 2 sweep, the CLI)
accepts a :class:`Budget` and a :class:`CancelToken`; the engine checks
both cooperatively at shard-round boundaries through a :class:`RunGuard`.
A tripped limit never raises: the run stops at the next boundary, flushes
its checkpoint journal, and returns a result flagged ``partial=True`` with
a structured ``stop_reason`` — and ``resume=True`` later completes it
bit-identically.  See ``docs/ROBUSTNESS.md`` for the full contract.

Typical CLI wiring::

    budget = Budget.from_cli(args.deadline, args.max_memory, args.max_patterns)
    token = CancelToken()
    with signal_scope(token):                  # SIGINT/SIGTERM trip the token
        result = simulate(netlist, budget=budget, cancel=token)
    sys.exit(exit_code(token))                 # 0 / 130 / 143, no traceback
"""

from typing import Any, Dict, Optional

from repro.guard.budget import (
    STOP_CANCELLED,
    STOP_DEADLINE,
    STOP_MEMORY,
    STOP_PATTERNS,
    STOP_REASONS,
    STOP_SIGINT,
    STOP_SIGTERM,
    Budget,
    parse_memory_size,
)
from repro.guard.cancel import CancelToken, exit_code, signal_scope
from repro.guard.memory import MemoryWatchdog, rss_bytes, total_rss
from repro.guard.runner import RunGuard


def guard_summary(
    budget: Optional[Budget] = None,
    cancel: Optional[CancelToken] = None,
    stop_reason: Optional[str] = None,
    partial: bool = False,
) -> Dict[str, Any]:
    """The CLI/manifest view of how a guarded run ended.

    Entry points embed this in ``--json`` payloads and in the
    ``RunManifest`` so an interrupted or budget-cut run is distinguishable
    from a complete one in every artifact.
    """
    cancelled = bool(cancel and cancel.cancelled)
    if stop_reason is None and cancelled:
        stop_reason = cancel.reason
    return {
        "budget": budget.to_json() if budget is not None else None,
        "cancelled": cancelled,
        "partial": bool(partial or cancelled or stop_reason is not None),
        "stop_reason": stop_reason,
        "exit_code": exit_code(cancel),
    }


__all__ = [
    "Budget",
    "CancelToken",
    "MemoryWatchdog",
    "RunGuard",
    "STOP_CANCELLED",
    "STOP_DEADLINE",
    "STOP_MEMORY",
    "STOP_PATTERNS",
    "STOP_REASONS",
    "STOP_SIGINT",
    "STOP_SIGTERM",
    "exit_code",
    "guard_summary",
    "parse_memory_size",
    "rss_bytes",
    "signal_scope",
    "total_rss",
]

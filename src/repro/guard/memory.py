"""Memory governance: RSS sampling and the pressure watchdog.

``rss_bytes`` reads resident-set sizes from ``/proc/<pid>/statm`` (no
third-party dependency), falling back to ``resource.getrusage`` for the
current process on platforms without procfs.  :class:`MemoryWatchdog`
samples the parent plus its shard workers once per engine round and
reports two thresholds: *pressure* (80% of the hard limit — time to
adapt) and *over the hard limit* (stop the run before the OS OOM-killer
does).  The deterministic ``oom`` chaos mode forces pressure on chosen
rounds so the adaptation ladder is testable without actually exhausting
memory.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional, Tuple

#: Fraction of the hard RSS limit at which the watchdog starts adapting
#: (halving the round's batch count, then degrading to serial).
SOFT_FRACTION = 0.8

try:
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (AttributeError, ValueError, OSError):  # pragma: no cover - non-POSIX
    _PAGE_SIZE = 4096


def rss_bytes(pid: Optional[int] = None) -> Optional[int]:
    """Resident-set size of a process in bytes, or None when unreadable.

    ``pid=None`` reads the current process.  Workers that already exited
    simply report None and drop out of the sum.
    """
    target = "self" if pid is None else str(pid)
    try:
        with open(f"/proc/{target}/statm", "rb") as handle:
            fields = handle.read().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        pass
    if pid is None:  # no procfs: peak RSS of self is better than nothing
        try:
            import resource

            return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
        except (ImportError, OSError, ValueError):  # pragma: no cover
            return None
    return None


def total_rss(pids: Iterable[int] = ()) -> Optional[int]:
    """Parent RSS plus every readable worker's, or None when unmeasurable."""
    total = rss_bytes()
    if total is None:
        return None
    for pid in pids:
        extra = rss_bytes(pid)
        if extra is not None:
            total += extra
    return total


class MemoryWatchdog:
    """Per-round RSS sampler feeding the guard's adaptation ladder.

    Parameters
    ----------
    max_rss:
        Hard resident-set limit in bytes (None: only chaos can create
        pressure).
    chaos:
        A :class:`~repro.engine.chaos.FaultInjector` whose ``oom`` mode
        forces pressure deterministically on its target rounds.
    """

    def __init__(self, max_rss: Optional[int] = None, chaos=None):
        self.max_rss = max_rss
        self.chaos = chaos
        self.samples = 0
        self.peak_rss = 0

    def sample(self, round_index: int,
               pids: Iterable[int] = ()) -> Tuple[bool, bool]:
        """Measure once; returns ``(pressure, over_hard_limit)``."""
        pressure = False
        hard = False
        if self.max_rss is not None:
            total = total_rss(pids)
            if total is not None:
                self.samples += 1
                self.peak_rss = max(self.peak_rss, total)
                pressure = total >= SOFT_FRACTION * self.max_rss
                hard = total >= self.max_rss
        if self.chaos is not None and self.chaos.oom_pressure(round_index):
            pressure = True
        return pressure, hard

"""The run guard: one object the engine polls at every round boundary.

:class:`RunGuard` composes the three governance mechanisms —
:class:`~repro.guard.budget.Budget`, :class:`~repro.guard.cancel.
CancelToken` and :class:`~repro.guard.memory.MemoryWatchdog` — behind two
calls the engine makes per round: :meth:`should_stop` before dispatching a
round (cancellation first, then deadline, then the pattern cap) and
:meth:`after_round` / :meth:`memory_action` after merging it (chaos
cancellation, then the memory-adaptation ladder).  ``RunGuard.create``
returns None for unguarded runs so the hot path stays a single ``is not
None`` check.

The memory ladder degrades before it stops: under pressure the guard first
halves the round's batch count (``"halve"``), then abandons the worker
pool for in-process serial execution (``"serial"``), and only once serial
*and* over the hard limit does it stop the run (``"stop"``, stop reason
``"memory"``).  Every step is counted in ``guard.*`` telemetry and in
``ShardStats.memory_adaptations``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro import telemetry
from repro.guard.budget import (
    STOP_CANCELLED,
    STOP_MEMORY,
    STOP_PATTERNS,
    STOP_SIGTERM,
    STOP_DEADLINE,
    Budget,
)
from repro.guard.cancel import CancelToken
from repro.guard.memory import MemoryWatchdog

#: Chaos modes the guard (not the worker) interprets.
_GUARD_CHAOS_MODES = ("sigterm", "oom")


class RunGuard:
    """Round-boundary governance for one engine run."""

    def __init__(
        self,
        budget: Optional[Budget] = None,
        cancel: Optional[CancelToken] = None,
        chaos=None,
    ):
        self.budget = budget.arm() if budget is not None else None
        self.cancel = cancel
        self.chaos = chaos
        watched_rss = budget.max_rss if budget is not None else None
        oom_chaos = chaos if chaos is not None and chaos.mode == "oom" else None
        self.watchdog: Optional[MemoryWatchdog] = None
        if watched_rss is not None or oom_chaos is not None:
            self.watchdog = MemoryWatchdog(watched_rss, chaos=oom_chaos)
        self.stop_reason: Optional[str] = None
        self.adaptations: List[Dict[str, Any]] = []

    @classmethod
    def create(
        cls,
        budget: Optional[Budget],
        cancel: Optional[CancelToken],
        chaos=None,
    ) -> Optional["RunGuard"]:
        """A guard when any governance is requested, else None."""
        chaos_guarded = chaos is not None and chaos.mode in _GUARD_CHAOS_MODES
        if budget is None and cancel is None and not chaos_guarded:
            return None
        return cls(budget, cancel, chaos if chaos_guarded else None)

    # -------------------------------------------------------- stop decisions

    def should_stop(self, pattern_base: int,
                    next_patterns: int) -> Optional[str]:
        """Stop reason if the run must end *before* the next round.

        The pattern cap stops only at round boundaries — when the base has
        reached the cap or the next round would overshoot it — so a capped
        run never narrows a batch and its checkpoint journal stays
        bit-compatible with the uncapped run.
        """
        if self.cancel is not None and self.cancel.cancelled:
            return self._stop(self.cancel.reason or STOP_CANCELLED)
        if self.budget is not None:
            if self.budget.expired():
                return self._stop(STOP_DEADLINE)
            cap = self.budget.max_patterns
            if cap is not None and (
                pattern_base >= cap or pattern_base + next_patterns > cap
            ):
                return self._stop(STOP_PATTERNS)
        return None

    def _stop(self, reason: str) -> str:
        if self.stop_reason is None:
            self.stop_reason = reason
            telemetry.count("guard.stops")
            telemetry.count(f"guard.stop.{reason}")
            with telemetry.span("guard.stop", reason=reason):
                pass
        return self.stop_reason

    # ----------------------------------------------------- post-round hooks

    def after_round(self, round_index: int) -> None:
        """Deterministic chaos cancellation (the ``sigterm`` mode)."""
        if self.chaos is not None and self.chaos.cancels_after(round_index):
            if self.cancel is None:
                self.cancel = CancelToken()
            self.cancel.trip(STOP_SIGTERM)

    def memory_action(
        self,
        round_index: int,
        pids: Iterable[int],
        chunk_batches: int,
        already_serial: bool,
    ) -> Optional[str]:
        """One rung of the adaptation ladder, or None when unpressured.

        Returns ``"halve"`` (shrink the round's batch count), ``"serial"``
        (abandon the pool), or ``"stop"`` (serial and still over the hard
        limit); the engine applies the action, this records it.
        """
        if self.watchdog is None:
            return None
        pressure, hard = self.watchdog.sample(round_index, pids)
        if not pressure:
            return None
        telemetry.count("guard.memory_pressure")
        if chunk_batches > 1:
            self._record_adaptation("halve_chunk", round_index)
            return "halve"
        if not already_serial:
            self._record_adaptation("degrade_serial", round_index)
            return "serial"
        if hard:
            self._stop(STOP_MEMORY)
            return "stop"
        return None

    def _record_adaptation(self, action: str, round_index: int) -> None:
        self.adaptations.append({"action": action, "round": round_index})
        telemetry.count(f"guard.{action}")

    # ----------------------------------------------------------------- views

    def to_json(self) -> Dict[str, Any]:
        return {
            "budget": self.budget.to_json() if self.budget else None,
            "cancelled": bool(self.cancel and self.cancel.cancelled),
            "stop_reason": self.stop_reason,
            "adaptations": list(self.adaptations),
            "peak_rss": self.watchdog.peak_rss if self.watchdog else None,
        }

"""Cooperative cancellation: tokens, signal handlers, exit codes.

A :class:`CancelToken` is a thread-safe latch the engine polls at shard-
round boundaries.  :func:`signal_scope` wires SIGINT/SIGTERM to trip a
token instead of raising ``KeyboardInterrupt`` mid-round: the in-flight
shard round drains normally (``future.result`` resumes after the handler
returns), its checkpoint record is flushed, and the run returns a
``partial=True`` result.  :func:`exit_code` maps the tripped token to the
conventional shell codes (130 for SIGINT, 143 for SIGTERM) so guarded CLI
entry points exit the way an unhandled signal would — minus the traceback
and the poisoned checkpoint.
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

from repro.guard.budget import STOP_CANCELLED, STOP_SIGINT, STOP_SIGTERM

_SIGNAL_REASONS = {
    signal.SIGINT: STOP_SIGINT,
    signal.SIGTERM: STOP_SIGTERM,
}


class CancelToken:
    """A one-shot cancellation latch (the first trip wins).

    Safe to trip from a signal handler or another thread; the engine only
    ever reads it.  ``reason`` is one of the structured stop reasons from
    :mod:`repro.guard.budget`; ``signum`` records the delivering signal
    when one was involved.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self.reason: Optional[str] = None
        self.signum: Optional[int] = None

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the token trips (or ``timeout`` elapses).

        Returns the tripped state, exactly like ``threading.Event.wait``.
        Used by drain loops (e.g. ``repro.serve``) that park a thread until
        a signal handler or another thread requests shutdown.
        """
        return self._event.wait(timeout)

    def trip(self, reason: str = STOP_CANCELLED,
             signum: Optional[int] = None) -> None:
        """Latch the token; later trips are ignored (first reason wins)."""
        if self._event.is_set():
            return
        self.reason = reason
        self.signum = signum
        self._event.set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"tripped:{self.reason}" if self.cancelled else "clear"
        return f"CancelToken({state})"


@contextmanager
def signal_scope(
    token: CancelToken,
    signals: Tuple[int, ...] = (signal.SIGINT, signal.SIGTERM),
) -> Iterator[CancelToken]:
    """Route ``signals`` to ``token.trip`` for the duration of the block.

    Previous handlers are restored on exit.  Handlers can only be
    installed from the main thread; elsewhere the scope degrades to a
    no-op (the token still works when tripped in code), so library callers
    can use it unconditionally.
    """
    previous = {}

    def _handler(signum, frame):  # pragma: no cover - exercised via os.kill
        token.trip(_SIGNAL_REASONS.get(signum, STOP_CANCELLED), signum=signum)

    for signum in signals:
        try:
            previous[signum] = signal.signal(signum, _handler)
        except ValueError:
            # Not the main thread: signal handlers are unavailable here.
            pass
    try:
        yield token
    finally:
        for signum, old in previous.items():
            try:
                signal.signal(signum, old)
            except ValueError:  # pragma: no cover - same non-main-thread case
                pass


def exit_code(token: Optional[CancelToken]) -> int:
    """Shell exit code for a (possibly) cancelled run: 0 / 130 / 143."""
    if token is None or not token.cancelled:
        return 0
    if token.signum == signal.SIGTERM or token.reason == STOP_SIGTERM:
        return 143
    return 130

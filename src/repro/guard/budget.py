"""Run budgets: wall-clock deadlines, pattern caps and memory ceilings.

A :class:`Budget` is the declarative half of :mod:`repro.guard`: it names
the limits a run must respect — seconds of wall clock, total patterns
applied, resident-set bytes across the parent and its shard workers — and
the engine checks them cooperatively at shard-round boundaries (see
``docs/ROBUSTNESS.md``).  When a limit trips, the run does not raise: it
stops at the next boundary, flushes its checkpoint, and returns a result
flagged ``partial=True`` with one of the structured stop reasons below.

A budget is *armed* once (``arm()`` is idempotent), so a single object
passed to a whole Table 2 sweep bounds the sweep's total wall clock rather
than restarting the countdown per kernel.  Pattern caps only ever stop at
round boundaries — they never narrow a batch — so a budget-cut run keyed
into a checkpoint journal resumes bit-identically without the budget.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Union

from repro.errors import SimulationError

#: Structured stop reasons a guarded run can report (``FaultSimResult.
#: stop_reason`` / ``ShardStats.stop_reason``).
STOP_DEADLINE = "deadline"        #: the wall-clock budget expired
STOP_PATTERNS = "max_patterns"    #: the pattern budget was reached
STOP_MEMORY = "memory"            #: RSS over the hard limit, post-adaptation
STOP_SIGINT = "sigint"            #: a SIGINT tripped the cancel token
STOP_SIGTERM = "sigterm"          #: a SIGTERM tripped the cancel token
STOP_CANCELLED = "cancelled"      #: the cancel token was tripped in code

STOP_REASONS = (
    STOP_DEADLINE, STOP_PATTERNS, STOP_MEMORY,
    STOP_SIGINT, STOP_SIGTERM, STOP_CANCELLED,
)

_SIZE_SUFFIXES = {
    "": 1, "b": 1,
    "k": 1024, "kb": 1024, "kib": 1024,
    "m": 1024 ** 2, "mb": 1024 ** 2, "mib": 1024 ** 2,
    "g": 1024 ** 3, "gb": 1024 ** 3, "gib": 1024 ** 3,
}


def parse_memory_size(text: Union[int, str]) -> int:
    """``"512M"``/``"2GiB"``/``"1048576"`` -> bytes (suffixes are 1024-based)."""
    if isinstance(text, int):
        return text
    raw = text.strip().lower()
    digits = raw
    suffix = ""
    for i, char in enumerate(raw):
        if not (char.isdigit() or char == "."):
            digits, suffix = raw[:i], raw[i:].strip()
            break
    if suffix not in _SIZE_SUFFIXES:
        raise SimulationError(
            f"bad memory size {text!r} (use e.g. 512M, 2GiB, 1048576)"
        )
    try:
        value = float(digits)
    except ValueError:
        raise SimulationError(f"bad memory size {text!r}")
    return int(value * _SIZE_SUFFIXES[suffix])


@dataclass
class Budget:
    """Resource limits for one run (or one shared sweep).

    Parameters
    ----------
    deadline:
        Wall-clock seconds the run may take, counted from :meth:`arm`.
    max_patterns:
        Cap on applied patterns, enforced at round boundaries (the run
        stops *before* a round that would exceed it, so the cap never
        reshapes batch geometry).
    max_rss:
        Resident-set ceiling in bytes (or a ``"512M"``-style string)
        summed over the parent and its shard workers; approaching it
        triggers the memory-adaptation ladder before the run is stopped.
    """

    deadline: Optional[float] = None
    max_patterns: Optional[int] = None
    max_rss: Optional[Union[int, str]] = None

    def __post_init__(self) -> None:
        if self.max_rss is not None:
            self.max_rss = parse_memory_size(self.max_rss)
        if self.deadline is not None and self.deadline < 0:
            raise SimulationError("budget deadline must be >= 0 seconds")
        if self.max_patterns is not None and self.max_patterns < 0:
            raise SimulationError("budget max_patterns must be >= 0")
        if self.max_rss is not None and self.max_rss < 0:
            raise SimulationError("budget max_rss must be >= 0 bytes")
        self._expires_at: Optional[float] = None

    # ------------------------------------------------------------- lifecycle

    def arm(self) -> "Budget":
        """Start the deadline countdown (idempotent: first call wins).

        Sharing one armed budget across a sweep bounds the *sweep*; each
        engine run arms whatever budget it receives, so un-armed budgets
        behave per-run automatically.
        """
        if self.deadline is not None and self._expires_at is None:
            self._expires_at = time.monotonic() + self.deadline
        return self

    @property
    def armed(self) -> bool:
        return self._expires_at is not None

    def expired(self) -> bool:
        """True once the armed deadline has passed (never for no deadline)."""
        return self._expires_at is not None and time.monotonic() >= self._expires_at

    def remaining(self) -> Optional[float]:
        """Seconds left on the armed deadline, or None without one."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - time.monotonic())

    def bounded(self) -> bool:
        """True when any limit is actually set."""
        return (
            self.deadline is not None
            or self.max_patterns is not None
            or self.max_rss is not None
        )

    # ----------------------------------------------------------------- views

    def to_json(self) -> Dict[str, Any]:
        return {
            "deadline": self.deadline,
            "max_patterns": self.max_patterns,
            "max_rss": self.max_rss,
        }

    @classmethod
    def from_cli(
        cls,
        deadline: Optional[float] = None,
        max_memory: Optional[Union[int, str]] = None,
        max_patterns: Optional[int] = None,
    ) -> Optional["Budget"]:
        """A budget from ``--deadline/--max-memory/--max-patterns`` flags,
        or None when no flag was given (unguarded run)."""
        if deadline is None and max_memory is None and max_patterns is None:
            return None
        return cls(deadline=deadline, max_patterns=max_patterns, max_rss=max_memory)

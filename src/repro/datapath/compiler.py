"""Expression-to-datapath compiler.

Turns an arithmetic expression DAG into a *pipelined, balanced* RTL
datapath the way the paper's MABAL-synthesised filters are structured:

* every primary input gets an input register;
* every operator runs in the pipeline stage after its deepest operand and
  writes an output register;
* operands consumed later than they are produced pass through delay
  registers (this is what balances the datapath — Section 7 of DESIGN.md);
* every primary output gets an output register.

Sharing is structural: a node used by several operators fans out after its
register, like (b+c) and (f+g) in c4a4m.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.datapath.modules import adder_spec, multiplier_spec
from repro.errors import RTLError
from repro.rtl.circuit import RTLCircuit


@dataclass(frozen=True)
class Var:
    """A primary input."""

    name: str


@dataclass(frozen=True)
class Add:
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Mul:
    left: "Expr"
    right: "Expr"


Expr = Union[Var, Add, Mul]


def expr_stage(expr: Expr, memo: Optional[Dict[int, int]] = None) -> int:
    """Pipeline stage of a node: vars are 0, operators 1 + deepest operand."""
    if memo is None:
        memo = {}
    key = id(expr)
    if key in memo:
        return memo[key]
    if isinstance(expr, Var):
        stage = 0
    else:
        stage = 1 + max(expr_stage(expr.left, memo), expr_stage(expr.right, memo))
    memo[key] = stage
    return stage


def evaluate_expr(expr: Expr, values: Dict[str, int], width: int, mul_out_width: int) -> int:
    """Word-level reference evaluation (for functional tests)."""
    in_mask = (1 << width) - 1
    if isinstance(expr, Var):
        return values[expr.name] & in_mask
    left = evaluate_expr(expr.left, values, width, mul_out_width)
    right = evaluate_expr(expr.right, values, width, mul_out_width)
    if isinstance(expr, Add):
        return ((left & in_mask) + (right & in_mask)) & in_mask
    return ((left & in_mask) * (right & in_mask)) & ((1 << mul_out_width) - 1)


@dataclass
class CompiledDatapath:
    """The compiler's output: circuit plus naming metadata."""

    circuit: RTLCircuit
    output_names: List[str]
    n_adders: int
    n_multipliers: int
    n_delay_registers: int
    n_stages: int


def compile_datapath(
    outputs: Sequence[Tuple[str, Expr]],
    name: str,
    width: int = 8,
    mul_out_width: Optional[int] = None,
) -> CompiledDatapath:
    """Compile named output expressions into a pipelined RTL datapath.

    ``mul_out_width`` defaults to the full double-width product (the paper's
    multipliers register all 16 bits; downstream blocks slice the 8 LSBs).
    """
    if mul_out_width is None:
        mul_out_width = 2 * width
    circuit = RTLCircuit(name)
    memo_stage: Dict[int, int] = {}
    produced: Dict[int, Tuple[str, int]] = {}  # expr id -> (reg-output net, stage)
    delay_cache: Dict[Tuple[str, int], str] = {}
    counters = {"add": 0, "mul": 0, "delay": 0}
    max_stage = max(expr_stage(e, memo_stage) for _, e in outputs)

    def ensure_var(var: Var) -> Tuple[str, int]:
        key = id(var)
        # Vars may be distinct objects with the same name; key by name.
        cache_key = ("var", var.name)
        if cache_key in delay_cache:
            return delay_cache[cache_key], 0
        pi_net = f"{var.name}"
        circuit.new_input(pi_net, width)
        reg_out = f"{var.name}_r"
        circuit.add_net(reg_out, width)
        circuit.add_register(f"R_{var.name}", pi_net, reg_out)
        delay_cache[cache_key] = reg_out
        return reg_out, 0

    def delayed(net: str, produced_stage: int, needed_stage: int) -> str:
        """Insert delay registers so the value arrives at ``needed_stage``."""
        current = net
        for hop in range(produced_stage + 1, needed_stage):
            key = (net, hop)
            if key in delay_cache:
                current = delay_cache[key]
                continue
            counters["delay"] += 1
            delayed_net = f"{net}_d{hop}"
            circuit.add_net(delayed_net, circuit.net(net).width)
            circuit.add_register(f"D_{net}_s{hop}", current, delayed_net)
            delay_cache[key] = delayed_net
            current = delayed_net
        return current

    def build(expr: Expr) -> Tuple[str, int]:
        """Returns (register-output net, producer stage)."""
        if isinstance(expr, Var):
            return ensure_var(expr)
        key = id(expr)
        if key in produced:
            return produced[key]
        left_net, left_stage = build(expr.left)
        right_net, right_stage = build(expr.right)
        stage = expr_stage(expr, memo_stage)
        left_ready = delayed(left_net, left_stage, stage)
        right_ready = delayed(right_net, right_stage, stage)
        if isinstance(expr, Add):
            counters["add"] += 1
            base = f"A{counters['add']}"
            kind, word_func, expander = adder_spec(width)
            out_width = width
        else:
            counters["mul"] += 1
            base = f"M{counters['mul']}"
            kind, word_func, expander = multiplier_spec(width, mul_out_width)
            out_width = mul_out_width
        block_out = f"{base}_out"
        circuit.add_net(block_out, out_width)
        circuit.add_block(
            base, [left_ready, right_ready], [block_out], kind, word_func, expander
        )
        reg_out = f"{base}_q"
        circuit.add_net(reg_out, out_width)
        circuit.add_register(f"R_{base}", block_out, reg_out)
        produced[key] = (reg_out, stage)
        return produced[key]

    output_names: List[str] = []
    for po_name, expr in outputs:
        net, stage = build(expr)
        if isinstance(expr, Var):
            raise RTLError("an output must be an operator, not a bare input")
        # Deepen shallower outputs so every PO sits at the same stage.
        ready = delayed(net, stage, max_stage + 1)
        circuit.mark_output(ready)
        output_names.append(ready)

    circuit.validate()
    return CompiledDatapath(
        circuit=circuit,
        output_names=output_names,
        n_adders=counters["add"],
        n_multipliers=counters["mul"],
        n_delay_registers=counters["delay"],
        n_stages=max_stage,
    )

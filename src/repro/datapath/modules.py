"""Arithmetic block library for MABAL-style datapaths.

Factories produce the ``kind``/``word_func``/``gate_expander`` triple an
RTL :class:`~repro.rtl.components.CombBlock` needs: word-level behaviour for
functional checks plus a gate expander for fault simulation.  Blocks follow
the paper's data paths: fixed-width modulo adders, and multipliers whose
outputs are truncated ("only the 8 least significant output lines of each
multiplier feed the next stage").
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.netlist.builders import array_multiplier, ripple_adder
from repro.netlist.netlist import Netlist


def adder_spec(width: int) -> Tuple[str, Callable, Callable]:
    """(kind, word_func, gate_expander) for a width-bit modulo adder.

    Operands wider than ``width`` are sliced to their ``width`` least
    significant bits — this is how the paper's datapaths consume multiplier
    outputs ("only the 8 least significant output lines of each multiplier
    feed the next stage").
    """
    mask = (1 << width) - 1

    def word_func(values: Sequence[int]) -> List[int]:
        a, b = values
        return [((a & mask) + (b & mask)) & mask]

    def gate_expander(netlist: Netlist, inputs, prefix: str):
        a, b = inputs
        return [ripple_adder(netlist, a[:width], b[:width], name=prefix)]

    return f"add{width}", word_func, gate_expander


def multiplier_spec(width: int, out_width: int) -> Tuple[str, Callable, Callable]:
    """(kind, word_func, gate_expander) for a width-bit array multiplier.

    ``out_width`` is the width of the produced word (up to ``2*width``): the
    paper's multipliers compute and register the full 16-bit product even
    though only the low 8 bits continue down the path, which is why a KA-85
    multiplier kernel (16-bit SA) observes more than the BIBS through-path
    does.  Operands are sliced to ``width`` LSBs like the adder's.
    """
    in_mask = (1 << width) - 1
    out_mask = (1 << out_width) - 1

    def word_func(values: Sequence[int]) -> List[int]:
        a, b = values
        return [((a & in_mask) * (b & in_mask)) & out_mask]

    def gate_expander(netlist: Netlist, inputs, prefix: str):
        a, b = inputs
        return [
            array_multiplier(
                netlist, a[:width], b[:width], name=prefix, out_width=out_width
            )
        ]

    return f"mul{width}x{width}_{out_width}", word_func, gate_expander


def passthrough_spec(width: int) -> Tuple[str, Callable, Callable]:
    """A vacuous (wire) block, for transport-path kernels."""

    def word_func(values: Sequence[int]) -> List[int]:
        return [values[0]]

    def gate_expander(netlist: Netlist, inputs, prefix: str):
        from repro.netlist.gates import GateType

        return [
            [
                netlist.add_gate(GateType.BUF, [bit], name=f"{prefix}_b{i}")
                for i, bit in enumerate(inputs[0])
            ]
        ]

    return f"wire{width}", word_func, gate_expander

"""The paper's three digital-filter data paths (Table 1).

All three are 8-bit MABAL-synthesised filter portions; multipliers feed only
their 8 least-significant outputs forward.  The pipelined register placement
(input registers, per-stage output registers, balancing delay registers,
output registers) reproduces the paper's BILBO-register counts and maximal
delays exactly — see DESIGN.md Section 7.

* ``c5a2m``: o = (a+b)*(c+d) + (e+f)*(g+h)   — 5 adders, 2 multipliers
* ``c3a2m``: o = ((a+b)*c + d)*e + f          — 3 adders, 2 multipliers
* ``c4a4m``: o = a*(f+g) + e*(b+c)            — 4 adders, 4 multipliers
             p = d*(b+c) + h*(f+g)
"""

from __future__ import annotations

from typing import Dict

from repro.datapath.compiler import Add, CompiledDatapath, Mul, Var, compile_datapath


def c5a2m(width: int = 8) -> CompiledDatapath:
    """o = (a+b)*(c+d) + (e+f)*(g+h)."""
    a, b, c, d = Var("a"), Var("b"), Var("c"), Var("d")
    e, f, g, h = Var("e"), Var("f"), Var("g"), Var("h")
    o = Add(Mul(Add(a, b), Add(c, d)), Mul(Add(e, f), Add(g, h)))
    return compile_datapath([("o", o)], "c5a2m", width=width)


def c3a2m(width: int = 8) -> CompiledDatapath:
    """o = ((a+b)*c + d)*e + f."""
    a, b, c = Var("a"), Var("b"), Var("c")
    d, e, f = Var("d"), Var("e"), Var("f")
    o = Add(Mul(Add(Mul(Add(a, b), c), d), e), f)
    return compile_datapath([("o", o)], "c3a2m", width=width)


def c4a4m(width: int = 8) -> CompiledDatapath:
    """o = a*(f+g) + e*(b+c);  p = d*(b+c) + h*(f+g).

    The two shared sums (f+g) and (b+c) are single blocks fanning out to two
    multipliers each, as in the paper's implementation sketch.
    """
    a, b, c, d = Var("a"), Var("b"), Var("c"), Var("d")
    e, f, g, h = Var("e"), Var("f"), Var("g"), Var("h")
    fg = Add(f, g)
    bc = Add(b, c)
    o = Add(Mul(a, fg), Mul(e, bc))
    p = Add(Mul(d, bc), Mul(h, fg))
    return compile_datapath([("o", o), ("p", p)], "c4a4m", width=width)


def all_filters(width: int = 8) -> Dict[str, CompiledDatapath]:
    """The three Table-1 circuits, keyed by name."""
    return {
        "c5a2m": c5a2m(width),
        "c3a2m": c3a2m(width),
        "c4a4m": c4a4m(width),
    }


#: Functional expressions as the paper prints them (Table 1 "Function" row).
FUNCTION_STRINGS = {
    "c5a2m": "o=(a+b)*(c+d)+(e+f)*(g+h)",
    "c3a2m": "o=((a+b)*c+d)*e+f",
    "c4a4m": "o=a*(f+g)+e*(b+c); p=d*(b+c)+h*(f+g)",
}

"""MABAL-style datapath construction: blocks, compiler, Table-1 filters."""

from repro.datapath.modules import adder_spec, multiplier_spec, passthrough_spec
from repro.datapath.compiler import (
    Add,
    CompiledDatapath,
    Expr,
    Mul,
    Var,
    compile_datapath,
    evaluate_expr,
    expr_stage,
)
from repro.datapath.filters import FUNCTION_STRINGS, all_filters, c3a2m, c4a4m, c5a2m

__all__ = [
    "adder_spec",
    "multiplier_spec",
    "passthrough_spec",
    "Var",
    "Add",
    "Mul",
    "Expr",
    "expr_stage",
    "evaluate_expr",
    "compile_datapath",
    "CompiledDatapath",
    "c5a2m",
    "c3a2m",
    "c4a4m",
    "all_filters",
    "FUNCTION_STRINGS",
]

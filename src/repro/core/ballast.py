"""BALLAST-style partial scan balancing (the paper's references [8, 11]).

The partial-scan counterpart of BIBS: convert a minimal set of registers to
*scan* registers so the remaining circuit is balanced.  A scan register may
act as pseudo-PI and pseudo-PO simultaneously, so — unlike BILBO selection —
Definition 1's condition 3 does not apply: the cut graph only needs to be
acyclic and balanced.  The paper uses this contrast in Example 1 (Figure 5:
two scan registers suffice where BIBS needs four extra BILBOs).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.analysis.balance import is_balanced
from repro.errors import SelectionError
from repro.graph.model import CircuitGraph
from repro.graph.structures import is_acyclic


@dataclass
class PartialScanDesign:
    """A minimal partial-scan balancing."""

    graph: CircuitGraph
    scan_registers: List[str]

    @property
    def n_scan_registers(self) -> int:
        return len(self.scan_registers)

    @property
    def n_scan_flipflops(self) -> int:
        widths = {
            e.register: e.weight for e in self.graph.register_edges() if e.register
        }
        return sum(widths[name] for name in self.scan_registers)


def _balanced_after_cut(graph: CircuitGraph, scan: Set[str]) -> bool:
    cut = {
        e.index for e in graph.register_edges() if e.register in scan
    }
    remainder = graph.without_edges(cut)
    return is_acyclic(remainder) and is_balanced(remainder)


def make_balanced_by_scan(
    graph: CircuitGraph,
    exact_limit: int = 18,
    method: str = "auto",
) -> PartialScanDesign:
    """Choose a minimal register set whose scan conversion balances the circuit.

    ``method="exact"`` searches subsets by count then total width — feasible
    up to ``exact_limit`` candidate registers.  ``method="greedy"`` starts
    from every register scanned (always balanced: no register edges remain)
    and un-scans the widest registers while balance survives — the
    polynomial-time spirit of the paper's reference [11].  ``"auto"`` picks
    exact when the register count permits.
    """
    registers = {e.register: e for e in graph.register_edges() if e.register}
    names = sorted(registers)
    if method == "auto":
        method = "exact" if len(names) <= exact_limit else "greedy"
    if _balanced_after_cut(graph, set()):
        return PartialScanDesign(graph, [])
    if method == "greedy":
        return _greedy_scan(graph, registers)
    if method != "exact":
        raise SelectionError(f"unknown partial-scan method {method!r}")
    if len(names) > exact_limit:
        raise SelectionError(
            f"{len(names)} registers exceed the exact search limit {exact_limit}"
        )
    for size in range(1, len(names) + 1):
        best: Optional[Tuple[int, List[str]]] = None
        for combo in itertools.combinations(names, size):
            if _balanced_after_cut(graph, set(combo)):
                width = sum(registers[n].weight for n in combo)
                if best is None or width < best[0]:
                    best = (width, list(combo))
        if best is not None:
            return PartialScanDesign(graph, best[1])
    raise SelectionError(f"no scan selection balances {graph.name}")


def _greedy_scan(graph: CircuitGraph, registers) -> PartialScanDesign:
    """Un-scan widest-first from the all-scanned (trivially balanced) state."""
    scan: Set[str] = set(registers)
    if not _balanced_after_cut(graph, scan):
        raise SelectionError(
            f"{graph.name} is unbalanced even with every register scanned "
            "(a combinational cycle?)"
        )
    changed = True
    while changed:
        changed = False
        for name in sorted(scan, key=lambda n: -registers[n].weight):
            trial = scan - {name}
            if _balanced_after_cut(graph, trial):
                scan = trial
                changed = True
    return PartialScanDesign(graph, sorted(scan))

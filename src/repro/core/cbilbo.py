"""CBILBO handling for single-register cycles (Theorem 2's note).

A cycle containing exactly one register cannot get the two BILBO edges
Theorem 2 requires.  The paper offers two outs: insert an extra register
that is transparent in normal mode and acts as an LFSR in test mode, or
convert the one register to a *CBILBO* (concurrent BILBO, reference [7]),
which generates patterns and compresses responses simultaneously at
roughly double the per-bit hardware cost.  This module detects such cycles
and prices both options.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.bilbo.cost import BILBO_CELL_AREA, CBILBO_CELL_AREA, DFF_AREA
from repro.graph.model import CircuitGraph
from repro.graph.structures import cycle_register_edges, simple_cycles


@dataclass(frozen=True)
class SingleRegisterCycle:
    """A cycle whose only register edge is ``register``."""

    vertices: Tuple[str, ...]
    register: str
    width: int

    def cbilbo_cost(self) -> float:
        """Extra area of converting the register to a CBILBO."""
        return self.width * (CBILBO_CELL_AREA - DFF_AREA)

    def extra_register_cost(self) -> float:
        """Extra area of adding a transparent register + BILBO conversion.

        A whole new register of the same width is added (BILBO cells), and
        the existing register still needs its BILBO conversion.
        """
        return self.width * BILBO_CELL_AREA + self.width * (
            BILBO_CELL_AREA - DFF_AREA
        )


def find_single_register_cycles(graph: CircuitGraph) -> List[SingleRegisterCycle]:
    """Cycles that BIBS cannot fix with plain BILBO conversions."""
    found: List[SingleRegisterCycle] = []
    for cycle in simple_cycles(graph):
        edges = cycle_register_edges(graph, cycle)
        if len(edges) == 1 and edges[0].register is not None:
            found.append(
                SingleRegisterCycle(
                    tuple(cycle), edges[0].register, edges[0].weight
                )
            )
    return found


def recommend(cycle: SingleRegisterCycle) -> str:
    """The cheaper of the paper's two options for this cycle."""
    if cycle.cbilbo_cost() <= cycle.extra_register_cost():
        return "cbilbo"
    return "extra-register"

"""Kernel extraction: cutting a circuit graph at its BILBO edges.

A *kernel* is a test primitive: patterns are applied and responses
compressed outside of it.  Cutting every BILBO register edge partitions the
circuit graph into weakly connected components; each component containing
logic is a kernel, its entering cut edges are TPG registers and its leaving
cut edges are SA registers.  Definition 1's three conditions are checked per
kernel by :meth:`Kernel.is_balanced_bistable`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List

from repro.analysis.balance import is_balanced
from repro.analysis.cones import kernel_spec_from_graph
from repro.errors import SelectionError
from repro.graph.model import CircuitGraph, Edge, VertexKind
from repro.graph.structures import is_acyclic, sequential_path_lengths
from repro.tpg.design import KernelSpec


@dataclass
class Kernel:
    """One test primitive of a BISTable design."""

    name: str
    vertices: FrozenSet[str]
    graph: CircuitGraph                 # induced subgraph, cut edges removed
    input_edges: List[Edge]             # BILBO edges entering (TPG side)
    output_edges: List[Edge]            # BILBO edges leaving (SA side)
    internal_bilbo_edges: List[Edge]    # cut edges with both endpoints inside

    @property
    def tpg_registers(self) -> Dict[str, int]:
        """TPG register name -> width."""
        return {e.register: e.weight for e in self.input_edges if e.register}

    @property
    def sa_registers(self) -> Dict[str, int]:
        """SA register name -> width."""
        return {e.register: e.weight for e in self.output_edges if e.register}

    @property
    def input_width(self) -> int:
        """M: total TPG width."""
        return sum(self.tpg_registers.values())

    @property
    def logic_blocks(self) -> List[str]:
        return sorted(
            v.name for v in self.graph.vertices.values() if v.kind is VertexKind.LOGIC
        )

    @property
    def sequential_depth(self) -> int:
        """Largest internal sequential length from a TPG edge to an SA edge."""
        lengths = sequential_path_lengths(self.graph)
        best = 0
        for in_edge in self.input_edges:
            for out_edge in self.output_edges:
                if in_edge.head == out_edge.tail:
                    continue
                pair = lengths.get((in_edge.head, out_edge.tail))
                if pair is not None:
                    best = max(best, pair[1])
        return best

    def is_balanced_bistable(self) -> bool:
        """Definition 1: acyclic + balanced + no register is both TPG and SA."""
        if self.internal_bilbo_edges:
            return False
        if not is_acyclic(self.graph):
            return False
        if not is_balanced(self.graph):
            return False
        # A register feeding and fed by the same kernel also shows up as the
        # same register appearing on both sides.
        return not (set(self.tpg_registers) & set(self.sa_registers))

    def to_kernel_spec(self) -> KernelSpec:
        """Generalized structure for TPG construction (Section 4)."""
        return kernel_spec_from_graph(
            self.graph, self.input_edges, self.output_edges, self.name
        )

    def functionally_exhaustive_test_time(self) -> int:
        """Corollary 1: 2^M - 1 + d clock cycles."""
        return (1 << self.input_width) - 1 + self.sequential_depth


def extract_kernels(graph: CircuitGraph, bilbo_registers: Iterable[str]) -> List[Kernel]:
    """Cut the graph at the named registers' edges and collect kernels.

    Components containing no logic and no vacuous vertex (bare PI/PO/fanout
    leftovers) are not kernels and are dropped.
    """
    bilbo = set(bilbo_registers)
    cut_edges = [e for e in graph.register_edges() if e.register in bilbo]
    missing = bilbo - {e.register for e in cut_edges}
    if missing:
        raise SelectionError(f"no register edges found for: {sorted(missing)}")
    cut_indices = {e.index for e in cut_edges}
    remainder = graph.without_edges(cut_indices)

    kernels: List[Kernel] = []
    for i, component in enumerate(remainder.weakly_connected_components()):
        kinds = {graph.vertex(name).kind for name in component}
        if not (VertexKind.LOGIC in kinds or VertexKind.VACUOUS in kinds):
            continue
        members = frozenset(component)
        sub = remainder.subgraph(component)
        input_edges = [
            e for e in cut_edges if e.head in members and e.tail not in members
        ]
        output_edges = [
            e for e in cut_edges if e.tail in members and e.head not in members
        ]
        internal = [
            e for e in cut_edges if e.tail in members and e.head in members
        ]
        kernels.append(
            Kernel(
                name=f"kernel{len(kernels) + 1}",
                vertices=members,
                graph=sub,
                input_edges=sorted(input_edges, key=lambda e: e.register or ""),
                output_edges=sorted(output_edges, key=lambda e: e.register or ""),
                internal_bilbo_edges=internal,
            )
        )
    # Deterministic order: by smallest vertex name.
    kernels.sort(key=lambda k: min(k.vertices))
    for i, kernel in enumerate(kernels, start=1):
        kernel.name = f"kernel{i}"
    return kernels

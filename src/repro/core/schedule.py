"""Test-session scheduling (the paper's reference [13]).

Kernels are tested in *sessions*.  Two kernels may share a session iff
their register resources do not conflict:

* a register cannot generate patterns for one kernel while compressing
  responses for another (TPG vs SA clash);
* a register cannot compress responses for two kernels at once (its
  signature would mix them);
* a register *may* generate patterns for several kernels simultaneously.

Scheduling is colouring the conflict graph; session time is the longest
kernel test in the session and total test time is the sum over sessions —
this is how Table 2's row 6/8 "test time" beats row 5/7's raw pattern
counts for the KA-85 design (e.g. c5a2m: 2,140 + 32 = 2,172 cycles in two
sessions instead of 4,440 sequential patterns).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

from repro.core.kernels import Kernel
from repro.errors import ScheduleError


@dataclass
class ScheduledKernel:
    """A kernel plus the test length scheduling should account for."""

    kernel: Kernel
    test_length: int

    @property
    def name(self) -> str:
        return self.kernel.name


@dataclass
class Schedule:
    """A complete test schedule."""

    sessions: List[List[ScheduledKernel]]

    @property
    def n_sessions(self) -> int:
        return len(self.sessions)

    @property
    def session_times(self) -> List[int]:
        return [max(k.test_length for k in session) for session in self.sessions]

    @property
    def total_test_time(self) -> int:
        return sum(self.session_times)

    @property
    def total_patterns(self) -> int:
        """Raw pattern count if kernels were tested one after another."""
        return sum(k.test_length for session in self.sessions for k in session)


def kernels_conflict(a: Kernel, b: Kernel) -> bool:
    """True iff the two kernels cannot share a test session."""
    a_tpg, a_sa = set(a.tpg_registers), set(a.sa_registers)
    b_tpg, b_sa = set(b.tpg_registers), set(b.sa_registers)
    if a_tpg & b_sa or a_sa & b_tpg:
        return True
    if a_sa & b_sa:
        return True
    return False


def schedule_kernels(
    items: Sequence[ScheduledKernel],
    optimal_limit: int = 12,
) -> Schedule:
    """Colour the kernel conflict graph into test sessions.

    Exact minimum-session search up to ``optimal_limit`` kernels (try k = 1
    upward with backtracking), greedy longest-first otherwise.
    """
    if not items:
        raise ScheduleError("nothing to schedule")
    conflicts: Dict[int, Set[int]] = {i: set() for i in range(len(items))}
    for i, j in itertools.combinations(range(len(items)), 2):
        if kernels_conflict(items[i].kernel, items[j].kernel):
            conflicts[i].add(j)
            conflicts[j].add(i)

    if len(items) <= optimal_limit:
        assignment = _exact_sessions(items, conflicts)
    else:
        assignment = _greedy_sessions(items, conflicts)

    n_sessions = max(assignment.values()) + 1
    sessions: List[List[ScheduledKernel]] = [[] for _ in range(n_sessions)]
    for index, session in assignment.items():
        sessions[session].append(items[index])
    sessions = [sorted(s, key=lambda k: -k.test_length) for s in sessions if s]
    sessions.sort(key=lambda s: -s[0].test_length)
    return Schedule(sessions)


def _greedy_sessions(
    items: Sequence[ScheduledKernel], conflicts: Dict[int, Set[int]]
) -> Dict[int, int]:
    order = sorted(range(len(items)), key=lambda i: -items[i].test_length)
    assignment: Dict[int, int] = {}
    for index in order:
        used = {assignment[n] for n in conflicts[index] if n in assignment}
        session = 0
        while session in used:
            session += 1
        assignment[index] = session
    return assignment


def _exact_sessions(
    items: Sequence[ScheduledKernel], conflicts: Dict[int, Set[int]]
) -> Dict[int, int]:
    greedy = _greedy_sessions(items, conflicts)
    upper = max(greedy.values()) + 1
    order = sorted(range(len(items)), key=lambda i: -len(conflicts[i]))

    for k in range(1, upper):
        assignment: Dict[int, int] = {}

        def backtrack(position: int) -> bool:
            if position == len(order):
                return True
            index = order[position]
            used = {assignment[n] for n in conflicts[index] if n in assignment}
            ceiling = min(k, (max(assignment.values()) + 2) if assignment else 1)
            for session in range(ceiling):
                if session not in used:
                    assignment[index] = session
                    if backtrack(position + 1):
                        return True
                    del assignment[index]
            return False

        if backtrack(0):
            return assignment
    return greedy


def schedule_design(kernels: Sequence[Kernel], test_lengths: Dict[str, int]) -> Schedule:
    """Schedule a design's kernels with externally supplied test lengths."""
    items = [
        ScheduledKernel(kernel, test_lengths[kernel.name]) for kernel in kernels
    ]
    return schedule_kernels(items)

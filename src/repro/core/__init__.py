"""The paper's testable design methodologies: BIBS, KA-85, scheduling, flow."""

from repro.core.kernels import Kernel, extract_kernels
from repro.core.bibs import (
    BIBSDesign,
    is_valid_selection,
    make_bibs_testable,
    mandatory_bilbo_registers,
    pi_register_edges,
    po_register_edges,
    selection_violations,
)
from repro.core.ka85 import KAReport, make_ka_testable
from repro.core.ballast import PartialScanDesign, make_balanced_by_scan
from repro.core.schedule import (
    Schedule,
    ScheduledKernel,
    kernels_conflict,
    schedule_design,
    schedule_kernels,
)
from repro.core.flow import (
    DesignEvaluation,
    KernelEvaluation,
    TDMComparison,
    compare_tdms,
    evaluate_design,
    lower_kernel_to_netlist,
)

__all__ = [
    "Kernel",
    "extract_kernels",
    "BIBSDesign",
    "make_bibs_testable",
    "mandatory_bilbo_registers",
    "pi_register_edges",
    "po_register_edges",
    "is_valid_selection",
    "selection_violations",
    "KAReport",
    "make_ka_testable",
    "PartialScanDesign",
    "make_balanced_by_scan",
    "Schedule",
    "ScheduledKernel",
    "kernels_conflict",
    "schedule_kernels",
    "schedule_design",
    "lower_kernel_to_netlist",
    "KernelEvaluation",
    "DesignEvaluation",
    "TDMComparison",
    "evaluate_design",
    "compare_tdms",
]

"""End-to-end BIST evaluation flow (a small BITS, Section 5).

Pipeline: RTL circuit -> circuit graph -> TDM (BIBS or KA-85) -> kernels ->
gate-level kernel netlists -> random-pattern fault simulation -> pattern
counts / scheduled test times.  This regenerates the quantities of Table 2.

Kernel lowering flattens internal registers into wires.  For a *balanced*
kernel this is exact per pattern: every path between two blocks has the
same sequential length, so the time-shifted values a block combines always
belong to one common input vector — which is precisely why balanced
BISTable kernels are 1-step functionally testable (Theorem 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.core.bibs import BIBSDesign, make_bibs_testable
from repro.core.ka85 import make_ka_testable
from repro.core.kernels import Kernel
from repro.core.schedule import Schedule, ScheduledKernel, schedule_kernels
from repro.errors import SimulationError
from repro.faultsim.patterns import RandomPatternSource
from repro.faultsim.simulator import FaultSimResult, FaultSimulator
from repro.graph.build import build_circuit_graph
from repro.netlist.netlist import Netlist
from repro.rtl.circuit import RTLCircuit

if TYPE_CHECKING:
    from repro.engine.cache import GoldenCache
    from repro.exec.config import RunConfig


def lower_kernel_to_netlist(circuit: RTLCircuit, kernel: Kernel) -> Netlist:
    """Flatten one kernel into a combinational netlist.

    TPG register outputs become primary inputs; SA register inputs become
    primary outputs; internal registers become wires (exact for balanced
    kernels, see module docstring).
    """
    netlist = Netlist(f"{circuit.name}:{kernel.name}")
    drivers = circuit.drivers()
    values: Dict[int, List[int]] = {}

    for name in sorted(kernel.tpg_registers):
        register = circuit.registers[name]
        bits = netlist.new_inputs(register.width, prefix=f"{name}_")
        values[register.output_net] = bits

    def resolve(net_index: int) -> List[int]:
        if net_index in values:
            return values[net_index]
        driver = drivers[net_index]
        if driver.kind == "register":
            register = circuit.registers[driver.name]
            values[net_index] = resolve(register.input_net)  # flatten to wire
            return values[net_index]
        if driver.kind == "block":
            block = circuit.blocks[driver.name]
            if block.gate_expander is None:
                raise SimulationError(f"block {block.name} has no gate expander")
            inputs = [resolve(n) for n in block.input_nets]
            outputs = block.gate_expander(netlist, inputs, block.name)
            for out_net, bits in zip(block.output_nets, outputs):
                values[out_net] = list(bits)
            return values[net_index]
        raise SimulationError(
            f"kernel {kernel.name}: net {circuit.nets[net_index].name} is fed "
            "by an unregistered primary input; BIST needs a PI register"
        )

    for name in sorted(kernel.sa_registers):
        register = circuit.registers[name]
        for bit in resolve(register.input_net):
            netlist.mark_output(bit)

    pruned = netlist.prune_to_outputs()
    pruned.validate()
    return pruned


@dataclass
class KernelEvaluation:
    """Fault-simulation outcome for one kernel."""

    kernel: Kernel
    netlist: Netlist
    result: FaultSimResult
    patterns_at: Dict[float, Optional[int]]

    @property
    def name(self) -> str:
        return self.kernel.name

    @property
    def final_coverage(self) -> float:
        return self.result.coverage(of_detectable=True)


@dataclass
class DesignEvaluation:
    """Fault-simulation outcome for a whole TDM design."""

    design: BIBSDesign
    kernel_evaluations: List[KernelEvaluation]
    targets: Tuple[float, ...]

    @property
    def n_logic_kernels(self) -> int:
        """Kernels containing combinational blocks (the paper's kernel count)."""
        return sum(1 for e in self.kernel_evaluations if e.kernel.logic_blocks)

    def total_patterns(self, target: float) -> Optional[int]:
        """Sum of per-kernel pattern counts at a coverage target (row 5/7)."""
        total = 0
        for evaluation in self.kernel_evaluations:
            count = evaluation.patterns_at.get(target)
            if count is None:
                return None
            total += count
        return total

    def schedule_at(self, target: float) -> Schedule:
        """The optimal session schedule using per-kernel lengths at a target."""
        items = []
        for evaluation in self.kernel_evaluations:
            length = evaluation.patterns_at.get(target)
            if length is None:
                raise SimulationError(
                    f"kernel {evaluation.name} never reached target {target}"
                )
            items.append(ScheduledKernel(evaluation.kernel, length))
        return schedule_kernels(items)

    def scheduled_time(self, target: float) -> Optional[int]:
        """Total test time with optimally scheduled sessions (row 6/8)."""
        try:
            return self.schedule_at(target).total_test_time
        except SimulationError:
            return None

    @property
    def n_sessions(self) -> int:
        return self.schedule_at(self.targets[-1]).n_sessions


def _median(values: List[int]) -> int:
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def evaluate_design(
    circuit: RTLCircuit,
    design: BIBSDesign,
    targets: Sequence[float] = (0.995, 1.0),
    max_patterns: int = 1 << 17,
    seed: int = 1994,
    batch_width: int = 256,
    classify_undetected: bool = True,
    n_seeds: int = 1,
    *,
    config: Optional["RunConfig"] = None,
    cache: Optional["GoldenCache"] = None,
    **options,
) -> DesignEvaluation:
    """Fault-simulate every kernel of a design under random patterns.

    Faults still undetected after ``max_patterns`` are classified by the
    PODEM ATPG when ``classify_undetected`` is set: proven-redundant faults
    leave the coverage denominator (the paper reports coverage of
    *detectable* faults); aborted/detectable leftovers keep the target
    unreached (``patterns_at[target] = None``).

    ``n_seeds > 1`` repeats each kernel's run with independent pattern
    streams and reports the per-target *median* pattern count — the
    patterns-to-100% statistic is a maximum over fault detection times and
    is noisy under a single stream.

    ``config`` (a :class:`repro.exec.RunConfig`) shapes every kernel run:
    execution backend and shard count, retry policy, checkpointing (keyed
    per kernel/stream, so one directory serves the whole sweep), budget,
    cancellation and chaos.  The sweep's own ``max_patterns`` and
    ``batch_width`` arguments stay authoritative — they define *what* the
    flow measures, the config defines *how* it executes.  Results are
    bit-identical across backends and shard counts.  The historical
    keyword surface (``jobs=``, ``checkpoint_dir=``, ...) is accepted via
    the engine's deprecation shim, which warns once per process.

    A run stopped early by a :mod:`repro.guard` limit (``result.partial``)
    skips ATPG classification — faults left undetected by a truncated
    pattern stream are not candidates for redundancy proofs — and its
    unreached targets simply report ``patterns_at[target] = None``.
    """
    from repro.exec.config import runconfig_from_legacy

    if config is not None and options:
        raise SimulationError(
            "evaluate_design() takes either config=RunConfig(...) or the "
            "legacy keyword options, not both (got config plus: "
            f"{', '.join(sorted(options))})"
        )
    if config is None:
        config = runconfig_from_legacy(options)
    config = config.replace(max_patterns=max_patterns)
    evaluations: List[KernelEvaluation] = []
    for kernel in design.kernels:
        with telemetry.span(
            "flow.evaluate_kernel",
            circuit=circuit.name, kernel=kernel.name, n_seeds=max(1, n_seeds),
        ):
            netlist = lower_kernel_to_netlist(circuit, kernel)
            simulator = FaultSimulator(netlist, batch_width=batch_width)
            per_seed: List[Dict[float, Optional[int]]] = []
            first_result: Optional[FaultSimResult] = None
            for round_index in range(max(1, n_seeds)):
                source = RandomPatternSource(
                    len(netlist.primary_inputs), seed=seed + 7919 * round_index
                )
                result = simulator.run(source, config=config, cache=cache)
                if classify_undetected and result.undetected and not result.partial:
                    from repro.atpg.podem import classify_faults

                    with telemetry.span(
                        "flow.classify_undetected",
                        kernel=kernel.name, n_faults=len(result.undetected),
                    ):
                        redundant, _tests, _aborted = classify_faults(
                            netlist, result.undetected
                        )
                    result.merge_undetectable(redundant)
                if first_result is None:
                    first_result = result
                per_seed.append(
                    {
                        target: result.patterns_for_coverage(
                            target, of_detectable=True
                        )
                        for target in targets
                    }
                )
            patterns_at: Dict[float, Optional[int]] = {}
            for target in targets:
                counts = [row[target] for row in per_seed]
                patterns_at[target] = (
                    None if any(c is None for c in counts) else _median(counts)
                )
            assert first_result is not None
            evaluations.append(
                KernelEvaluation(kernel, netlist, first_result, patterns_at)
            )
    return DesignEvaluation(design, evaluations, tuple(targets))


@dataclass
class TDMComparison:
    """BIBS vs KA-85 on one circuit: the Table 2 column pair."""

    circuit_name: str
    bibs: DesignEvaluation
    ka: DesignEvaluation


def compare_tdms(
    circuit: RTLCircuit,
    targets: Sequence[float] = (0.995, 1.0),
    max_patterns: int = 1 << 17,
    seed: int = 1994,
    n_seeds: int = 1,
    *,
    config: Optional["RunConfig"] = None,
    cache: Optional["GoldenCache"] = None,
    **options,
) -> TDMComparison:
    """Run both TDMs end to end on one circuit.

    ``config`` / ``cache`` are shared by both design evaluations (so one
    golden cache and one checkpoint directory serve the whole comparison);
    legacy engine keywords are accepted via the deprecation shim.
    """
    from repro.exec.config import runconfig_from_legacy

    if config is not None and options:
        raise SimulationError(
            "compare_tdms() takes either config=RunConfig(...) or the "
            "legacy keyword options, not both (got config plus: "
            f"{', '.join(sorted(options))})"
        )
    if config is None:
        config = runconfig_from_legacy(options)
    with telemetry.span("flow.compare_tdms", circuit=circuit.name):
        graph = build_circuit_graph(circuit)
        bibs_design = make_bibs_testable(graph)
        ka_design = make_ka_testable(graph).design
        with telemetry.span("flow.evaluate_design", circuit=circuit.name,
                            tdm="bibs"):
            bibs_eval = evaluate_design(
                circuit, bibs_design, targets, max_patterns, seed,
                n_seeds=n_seeds, config=config, cache=cache,
            )
        with telemetry.span("flow.evaluate_design", circuit=circuit.name,
                            tdm="ka85"):
            ka_eval = evaluate_design(
                circuit, ka_design, targets, max_patterns, seed,
                n_seeds=n_seeds, config=config, cache=cache,
            )
    return TDMComparison(circuit.name, bibs_eval, ka_eval)

"""The BIBS testable design methodology (Section 3).

Given a circuit graph, choose a set of registers to convert to BILBO
registers such that cutting their edges leaves only balanced BISTable
kernels (Definition 1).  PI and PO registers are always converted (patterns
enter and signatures leave the circuit there); beyond that the selection is
minimised — exactly (branch & bound over candidate register edges, smallest
total width first) for small circuits, greedily otherwise.

Theorem 2 is implicit in the validity predicate: a cycle or URFS with fewer
than two BILBO edges always leaves some kernel cyclic, unbalanced, or with a
register on both its TPG and SA side.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.bilbo.cost import BILBO_CELL_AREA, DFF_AREA
from repro.core.kernels import Kernel, extract_kernels
from repro.errors import SelectionError
from repro.graph.model import CircuitGraph, Edge, VertexKind
from repro.graph.paths import maximal_delay
from repro.graph.structures import find_urfs_witnesses, is_acyclic


@dataclass
class BIBSDesign:
    """A finished BIBS-testable design."""

    graph: CircuitGraph
    bilbo_registers: List[str]
    kernels: List[Kernel]
    method: str = "exact"

    @property
    def n_bilbo_registers(self) -> int:
        return len(self.bilbo_registers)

    @property
    def n_bilbo_flipflops(self) -> int:
        widths = {
            e.register: e.weight for e in self.graph.register_edges() if e.register
        }
        return sum(widths[name] for name in self.bilbo_registers)

    @property
    def n_kernels(self) -> int:
        return len(self.kernels)

    def maximal_delay(self) -> int:
        """Max BILBO registers on any PI-to-PO path (Table 2 row 4)."""
        return maximal_delay(self.graph, self.bilbo_registers)

    def added_area(self) -> float:
        """Area added by register conversion, in D-FF equivalents."""
        return self.n_bilbo_flipflops * (BILBO_CELL_AREA - DFF_AREA)

    def is_valid(self) -> bool:
        return all(k.is_balanced_bistable() for k in self.kernels)


# ------------------------------------------------------------- mandatory set

def _wire_reachable(graph: CircuitGraph, start: str, forward: bool) -> Set[str]:
    """Vertices reachable from ``start`` through wire edges and
    fanout/vacuous vertices only (the "same signal" region of a net)."""
    passthrough = {VertexKind.FANOUT, VertexKind.VACUOUS}
    seen = {start}
    stack = [start]
    result = {start}
    while stack:
        node = stack.pop()
        edges = graph.out_edges(node) if forward else graph.in_edges(node)
        for edge in edges:
            if edge.is_register:
                continue
            neighbor = edge.head if forward else edge.tail
            result.add(neighbor)
            if neighbor not in seen and graph.vertex(neighbor).kind in passthrough:
                seen.add(neighbor)
                stack.append(neighbor)
    return result


def pi_register_edges(graph: CircuitGraph) -> List[Edge]:
    """Register edges directly fed (through wires/fanout only) by a PI."""
    edges: List[Edge] = []
    for vertex in graph.input_vertices():
        region = _wire_reachable(graph, vertex.name, forward=True)
        for edge in graph.register_edges():
            if edge.tail in region:
                edges.append(edge)
    return _dedupe(edges)


def po_register_edges(graph: CircuitGraph) -> List[Edge]:
    """Register edges that directly feed (through wires/fanout only) a PO."""
    edges: List[Edge] = []
    for vertex in graph.output_vertices():
        region = _wire_reachable(graph, vertex.name, forward=False)
        for edge in graph.register_edges():
            if edge.head in region:
                edges.append(edge)
    return _dedupe(edges)


def _dedupe(edges: Iterable[Edge]) -> List[Edge]:
    seen: Set[int] = set()
    out: List[Edge] = []
    for edge in edges:
        if edge.index not in seen:
            seen.add(edge.index)
            out.append(edge)
    return out


def mandatory_bilbo_registers(graph: CircuitGraph) -> List[str]:
    """PI and PO registers — converted by every TDM in the paper."""
    names = [e.register for e in pi_register_edges(graph) if e.register]
    names += [e.register for e in po_register_edges(graph) if e.register]
    return sorted(set(names))


# --------------------------------------------------------------- validity

def selection_violations(graph: CircuitGraph, bilbo: Set[str]) -> int:
    """How far a selection is from valid (0 = balanced BISTable everywhere)."""
    kernels = extract_kernels(graph, bilbo)
    score = 0
    for kernel in kernels:
        score += len(kernel.internal_bilbo_edges)
        if not is_acyclic(kernel.graph):
            score += 10
            continue
        score += len(find_urfs_witnesses(kernel.graph))
        if set(kernel.tpg_registers) & set(kernel.sa_registers):
            score += 1
    return score


def is_valid_selection(graph: CircuitGraph, bilbo: Set[str]) -> bool:
    return selection_violations(graph, bilbo) == 0


# --------------------------------------------------------------- selection

def make_bibs_testable(
    graph: CircuitGraph,
    method: str = "auto",
    exact_limit: int = 16,
    extra_mandatory: Sequence[str] = (),
) -> BIBSDesign:
    """Select BILBO registers making the circuit BIBS testable.

    ``method``: "exact" (minimal count, then minimal total width), "greedy",
    or "auto" (exact when at most ``exact_limit`` optional register edges).
    """
    mandatory = set(mandatory_bilbo_registers(graph)) | set(extra_mandatory)
    all_registers = {e.register: e for e in graph.register_edges() if e.register}
    candidates = sorted(set(all_registers) - mandatory)

    if method == "auto":
        method = "exact" if len(candidates) <= exact_limit else "greedy"

    if is_valid_selection(graph, mandatory):
        chosen = mandatory
    elif method == "exact":
        chosen = _exact_selection(graph, mandatory, candidates, all_registers)
    elif method == "greedy":
        chosen = _greedy_selection(graph, mandatory, candidates)
    else:
        raise SelectionError(f"unknown selection method {method!r}")

    kernels = extract_kernels(graph, chosen)
    design = BIBSDesign(graph, sorted(chosen), kernels, method)
    if not design.is_valid():
        raise SelectionError(
            f"no valid BIBS selection found for {graph.name} (method={method})"
        )
    return design


def _exact_selection(
    graph: CircuitGraph,
    mandatory: Set[str],
    candidates: List[str],
    register_edges: Dict[str, Edge],
) -> Set[str]:
    """Smallest valid extra-register set; ties broken by total width."""
    for size in range(1, len(candidates) + 1):
        best: Optional[Tuple[int, Set[str]]] = None
        for extra in itertools.combinations(candidates, size):
            selection = mandatory | set(extra)
            if is_valid_selection(graph, selection):
                width = sum(register_edges[name].weight for name in extra)
                if best is None or width < best[0]:
                    best = (width, selection)
        if best is not None:
            return best[1]
    raise SelectionError(
        f"even converting every register fails to make {graph.name} BIBS testable"
    )


def _greedy_selection(
    graph: CircuitGraph,
    mandatory: Set[str],
    candidates: List[str],
) -> Set[str]:
    """Greedy removal: start from every register converted, un-convert as
    many (widest-first) as validity allows.

    The add-one-at-a-time direction is not monotone — fixing a condition-3
    violation often *raises* the violation count before it drops — whereas
    removal from the all-converted design preserves validity step by step.
    """
    widths = {e.register: e.weight for e in graph.register_edges() if e.register}
    selection = set(mandatory) | set(candidates)
    if not is_valid_selection(graph, selection):
        raise SelectionError(
            f"even converting every register fails to make {graph.name} "
            "BIBS testable (a cycle with a single register needs a CBILBO "
            "or an extra transparent register — Theorem 2's note)"
        )
    changed = True
    while changed:
        changed = False
        for name in sorted(
            selection - set(mandatory), key=lambda n: -widths.get(n, 0)
        ):
            trial = selection - {name}
            if is_valid_selection(graph, trial):
                selection = trial
                changed = True
    return selection

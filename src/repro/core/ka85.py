"""The Krasniewski–Albicki 1985 baseline TDM (the paper's reference [3]).

Criteria (Section 3.4):

1. a BILBO register for every input port of a combinational block having
   more than one input port;
2. a BILBO register for every PI/PO port;
3. at least two BILBO registers in any cycle.

Theorem 3 shows every circuit satisfying these criteria decomposes into
balanced BISTable structures, so KA-85 is a special case of BIBS — but it
converts more registers (the paper's Figure 9: 10 vs 8) and inserts BILBO
registers deep in the datapath, inflating the maximal delay (Table 2 row 4).

Kernels are extracted with the same cut machinery as BIBS; for the paper's
datapaths each adder/multiplier comes out as its own kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.core.bibs import (
    BIBSDesign,
    mandatory_bilbo_registers,
)
from repro.core.kernels import extract_kernels
from repro.errors import SelectionError
from repro.graph.model import CircuitGraph, Edge, VertexKind
from repro.graph.structures import simple_cycles, cycle_register_edges


def _feeding_register(graph: CircuitGraph, edge: Edge) -> Optional[Edge]:
    """The register edge supplying an input port, tracing wire fanout back.

    ``edge`` is an in-edge of a logic vertex.  Register edges supply the
    port directly; wire edges are traced backwards through fanout/vacuous
    vertices.  Returns None when the port is fed combinationally (no
    register on the way) — KA-85 would have to insert one.
    """
    if edge.is_register:
        return edge
    passthrough = {VertexKind.FANOUT, VertexKind.VACUOUS}
    current = edge
    while True:
        tail = graph.vertex(current.tail)
        if tail.kind not in passthrough:
            return None  # fed by a block or PI directly through wires
        in_edges = graph.in_edges(tail.name)
        if not in_edges:
            return None
        # Fanout/vacuous vertices have exactly one driver.
        current = in_edges[0]
        if current.is_register:
            return current


@dataclass
class KAReport:
    """Details of a KA-85 conversion."""

    design: BIBSDesign
    ports_without_registers: List[Tuple[str, int]]  # (block, port index)
    cycle_additions: List[str]

    @property
    def needs_register_insertion(self) -> bool:
        return bool(self.ports_without_registers)


def make_ka_testable(graph: CircuitGraph) -> KAReport:
    """Apply the three KA-85 criteria and extract the resulting kernels."""
    selected: Set[str] = set(mandatory_bilbo_registers(graph))  # criterion 2
    missing_ports: List[Tuple[str, int]] = []

    # Criterion 1: every input port of a multi-port block.
    for vertex in graph.logic_vertices():
        in_edges = graph.in_edges(vertex.name)
        if len(in_edges) <= 1:
            continue
        for port, edge in enumerate(in_edges):
            register_edge = _feeding_register(graph, edge)
            if register_edge is None or register_edge.register is None:
                missing_ports.append((vertex.name, port))
            else:
                selected.add(register_edge.register)

    # Criterion 3: at least two BILBO edges in every cycle.
    cycle_additions: List[str] = []
    for cycle in simple_cycles(graph):
        register_edges = cycle_register_edges(graph, cycle)
        chosen = [e for e in register_edges if e.register in selected]
        needed = 2 - len(chosen)
        if needed <= 0:
            continue
        available = sorted(
            (e for e in register_edges if e.register not in selected),
            key=lambda e: e.weight,
        )
        if len(available) < needed:
            raise SelectionError(
                f"cycle through {cycle[:4]}... has too few registers for KA-85"
            )
        for edge in available[:needed]:
            selected.add(edge.register)
            cycle_additions.append(edge.register)

    kernels = extract_kernels(graph, selected)
    design = BIBSDesign(graph, sorted(selected), kernels, method="ka85")
    return KAReport(design, missing_ports, cycle_additions)

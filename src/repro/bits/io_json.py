"""Circuit serialization (the BITS system's EDIF role, in JSON).

The paper's BITS reads and writes EDIF; this library uses a JSON schema
carrying the same structural content: nets (name/width), blocks
(kind/ports), registers and PI/PO markings.  Block *behaviour* is not
serialized — it is reattached on load from the block ``kind`` through a
spec registry (``add<W>`` and ``mul<W>x<W>_<O>`` are pre-registered; custom
kinds can be added with :func:`register_block_kind`).
"""

from __future__ import annotations

import json
import re
from typing import Callable, Dict, Optional, Tuple

from repro.datapath.modules import adder_spec, multiplier_spec, passthrough_spec
from repro.errors import RTLError
from repro.rtl.circuit import RTLCircuit

SCHEMA_VERSION = 1

_KIND_REGISTRY: Dict[str, Callable[[], Tuple]] = {}


def register_block_kind(kind: str, factory: Callable[[], Tuple]) -> None:
    """Register a spec factory returning (kind, word_func, gate_expander)."""
    _KIND_REGISTRY[kind] = factory


def _builtin_spec(kind: str):
    if kind in _KIND_REGISTRY:
        return _KIND_REGISTRY[kind]()
    add_match = re.fullmatch(r"add(\d+)", kind)
    if add_match:
        return adder_spec(int(add_match.group(1)))
    mul_match = re.fullmatch(r"mul(\d+)x\d+_(\d+)", kind)
    if mul_match:
        return multiplier_spec(int(mul_match.group(1)), int(mul_match.group(2)))
    wire_match = re.fullmatch(r"wire(\d+)", kind)
    if wire_match:
        return passthrough_spec(int(wire_match.group(1)))
    return None


def circuit_to_dict(circuit: RTLCircuit) -> dict:
    """Structural dictionary form of a circuit."""
    return {
        "schema": SCHEMA_VERSION,
        "name": circuit.name,
        "nets": [
            {"name": net.name, "width": net.width} for net in circuit.nets
        ],
        "blocks": [
            {
                "name": block.name,
                "kind": block.kind,
                "inputs": [circuit.nets[n].name for n in block.input_nets],
                "outputs": [circuit.nets[n].name for n in block.output_nets],
            }
            for block in circuit.blocks.values()
        ],
        "registers": [
            {
                "name": register.name,
                "input": circuit.nets[register.input_net].name,
                "output": circuit.nets[register.output_net].name,
            }
            for register in circuit.registers.values()
        ],
        "primary_inputs": [circuit.nets[n].name for n in circuit.primary_inputs],
        "primary_outputs": [circuit.nets[n].name for n in circuit.primary_outputs],
    }


def circuit_from_dict(data: dict) -> RTLCircuit:
    """Rebuild a circuit, reattaching behaviour from the kind registry."""
    if data.get("schema") != SCHEMA_VERSION:
        raise RTLError(f"unsupported circuit schema {data.get('schema')!r}")
    circuit = RTLCircuit(data["name"])
    for net in data["nets"]:
        circuit.add_net(net["name"], net["width"])
    for block in data["blocks"]:
        spec = _builtin_spec(block["kind"])
        word_func = gate_expander = None
        if spec is not None:
            _, word_func, gate_expander = spec
        circuit.add_block(
            block["name"],
            block["inputs"],
            block["outputs"],
            kind=block["kind"],
            word_func=word_func,
            gate_expander=gate_expander,
        )
    for register in data["registers"]:
        circuit.add_register(register["name"], register["input"], register["output"])
    for name in data["primary_inputs"]:
        circuit.mark_input(name)
    for name in data["primary_outputs"]:
        circuit.mark_output(name)
    circuit.validate()
    return circuit


def dumps(circuit: RTLCircuit, indent: Optional[int] = 2) -> str:
    return json.dumps(circuit_to_dict(circuit), indent=indent)


def loads(text: str) -> RTLCircuit:
    return circuit_from_dict(json.loads(text))


def dump(circuit: RTLCircuit, path) -> None:
    with open(path, "w") as handle:
        handle.write(dumps(circuit))


def load(path) -> RTLCircuit:
    with open(path) as handle:
        return loads(handle.read())

"""Test controller synthesis (the BITS system "synthesizes a test
controller", Section 5).

Given a BIST design and its session schedule, the controller is a small
FSM that sequences the self-test: per session it holds each register's
BILBO mode lines (TPG for the session's pattern generators, SA for its
signature analyzers, NORMAL elsewhere), runs the session for its test
length, then shifts the signatures out.  The synthesized controller is a
data structure with a cycle-accurate :meth:`BISTController.trace`, which
the tests validate against the schedule's resource rules.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.bilbo.register import BILBOMode
from repro.core.schedule import Schedule
from repro.errors import ScheduleError


class Phase(enum.Enum):
    RESET = "reset"
    SEED = "seed"
    RUN = "run"
    SHIFT = "shift"
    DONE = "done"


@dataclass(frozen=True)
class ControllerState:
    """One FSM state of the controller."""

    index: int
    phase: Phase
    session: Optional[int]   # session number for SEED/RUN/SHIFT phases
    cycles: int              # dwell time in this state
    modes: Dict[str, BILBOMode] = field(default_factory=dict, hash=False, compare=False)


class BISTController:
    """The synthesized BIST controller for one scheduled design."""

    def __init__(
        self,
        schedule: Schedule,
        register_widths: Dict[str, int],
        shift_out: bool = True,
    ):
        self.schedule = schedule
        self.register_widths = dict(register_widths)
        self.states: List[ControllerState] = []
        self._build(shift_out)

    def _build(self, shift_out: bool) -> None:
        index = 0
        self.states.append(
            ControllerState(index, Phase.RESET, None, 1, {
                name: BILBOMode.RESET for name in self.register_widths
            })
        )
        for session_index, session in enumerate(self.schedule.sessions):
            tpg: Dict[str, BILBOMode] = {}
            sa: Dict[str, BILBOMode] = {}
            for scheduled in session:
                for name in scheduled.kernel.tpg_registers:
                    tpg[name] = BILBOMode.TPG
                for name in scheduled.kernel.sa_registers:
                    if name in tpg:
                        raise ScheduleError(
                            f"register {name} is TPG and SA in session "
                            f"{session_index}"
                        )
                    sa[name] = BILBOMode.SA
            modes = {name: BILBOMode.NORMAL for name in self.register_widths}
            modes.update(tpg)
            modes.update(sa)

            index += 1
            seed_modes = dict(modes)
            for name in tpg:
                seed_modes[name] = BILBOMode.SCAN  # seed the generators
            self.states.append(
                ControllerState(index, Phase.SEED, session_index,
                                max(self.register_widths[n] for n in tpg) if tpg else 1,
                                seed_modes)
            )

            index += 1
            run_cycles = max(s.test_length for s in session)
            self.states.append(
                ControllerState(index, Phase.RUN, session_index, run_cycles, modes)
            )

            if shift_out and sa:
                index += 1
                shift_modes = dict(modes)
                for name in sa:
                    shift_modes[name] = BILBOMode.SCAN
                self.states.append(
                    ControllerState(
                        index, Phase.SHIFT, session_index,
                        max(self.register_widths[n] for n in sa), shift_modes,
                    )
                )
        index += 1
        self.states.append(
            ControllerState(index, Phase.DONE, None, 1, {
                name: BILBOMode.NORMAL for name in self.register_widths
            })
        )

    # ---------------------------------------------------------------- query

    @property
    def total_cycles(self) -> int:
        return sum(state.cycles for state in self.states)

    @property
    def n_states(self) -> int:
        return len(self.states)

    def trace(self) -> Iterator[Tuple[int, ControllerState]]:
        """(cycle, state) for every clock cycle of the self-test."""
        cycle = 0
        for state in self.states:
            for _ in range(state.cycles):
                yield cycle, state
                cycle += 1

    def modes_at(self, cycle: int) -> Dict[str, BILBOMode]:
        """Register modes active at an absolute cycle."""
        for t, state in self.trace():
            if t == cycle:
                return state.modes
        raise ScheduleError(f"cycle {cycle} beyond the self-test ({self.total_cycles})")

    def describe(self) -> str:
        """Human-readable controller program."""
        lines = []
        for state in self.states:
            session = "" if state.session is None else f" session {state.session}"
            interesting = {
                name: mode.value
                for name, mode in sorted(state.modes.items())
                if mode not in (BILBOMode.NORMAL,)
            }
            lines.append(
                f"S{state.index}: {state.phase.value}{session} "
                f"x{state.cycles} {interesting}"
            )
        return "\n".join(lines)

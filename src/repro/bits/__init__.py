"""A small BITS: design-space exploration, controller synthesis, circuit I/O."""

from repro.bits.design_space import DesignPoint, explore_design_space, pareto_front
from repro.bits.controller import ControllerState, Phase, BISTController
from repro.bits import io_json

__all__ = [
    "DesignPoint",
    "explore_design_space",
    "pareto_front",
    "BISTController",
    "ControllerState",
    "Phase",
    "io_json",
]

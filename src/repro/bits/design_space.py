"""BISTable design-space exploration (the BITS system, Section 5).

The paper's BITS CAD system "systematically explores the BISTable design
space to provide a family of solutions".  This module enumerates valid
BILBO-register selections beyond the minimal one and scores each design on
the three axes the paper trades off:

* added area (flip-flops converted to BILBO cells);
* maximal delay (BILBO registers on the worst PI→PO path);
* a test-time proxy (scheduled sessions, each costed at the smaller of the
  functionally exhaustive bound 2^M and a pseudo-random budget cap — the
  paper's own observation that a small slice of the exhaustive set usually
  suffices).

The result is the family's Pareto front: no returned design is dominated
on all three axes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.bilbo.cost import BILBO_CELL_AREA, DFF_AREA
from repro.core.bibs import (
    BIBSDesign,
    is_valid_selection,
    mandatory_bilbo_registers,
)
from repro.core.kernels import extract_kernels
from repro.core.schedule import ScheduledKernel, schedule_kernels
from repro.errors import SelectionError
from repro.graph.model import CircuitGraph
from repro.graph.paths import maximal_delay


@dataclass(frozen=True)
class DesignPoint:
    """One valid BISTable design with its cost vector."""

    bilbo_registers: Tuple[str, ...]
    n_registers: int
    added_area: float
    maximal_delay: int
    test_time_proxy: int
    n_kernels: int
    n_sessions: int

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance over (area, delay, time)."""
        at_least = (
            self.added_area <= other.added_area
            and self.maximal_delay <= other.maximal_delay
            and self.test_time_proxy <= other.test_time_proxy
        )
        strictly = (
            self.added_area < other.added_area
            or self.maximal_delay < other.maximal_delay
            or self.test_time_proxy < other.test_time_proxy
        )
        return at_least and strictly


def _test_time_proxy(graph: CircuitGraph, selection: Set[str], cap_width: int) -> Tuple[int, int, int]:
    """(time, n_kernels, n_sessions) for a valid selection."""
    kernels = extract_kernels(graph, selection)
    items = [
        ScheduledKernel(k, 1 << min(k.input_width, cap_width)) for k in kernels
    ]
    schedule = schedule_kernels(items)
    logic = sum(1 for k in kernels if k.logic_blocks)
    return schedule.total_test_time, logic, schedule.n_sessions


def explore_design_space(
    graph: CircuitGraph,
    max_extra: Optional[int] = None,
    cap_width: int = 12,
    limit: int = 4096,
) -> List[DesignPoint]:
    """Enumerate valid designs and return the Pareto-optimal family.

    ``max_extra`` bounds how many optional registers beyond the mandatory
    PI/PO set are considered per design (None = all); ``limit`` bounds the
    number of candidate subsets examined.
    """
    mandatory = set(mandatory_bilbo_registers(graph))
    widths = {e.register: e.weight for e in graph.register_edges() if e.register}
    candidates = sorted(set(widths) - mandatory)
    if max_extra is None:
        max_extra = len(candidates)

    points: List[DesignPoint] = []
    examined = 0
    for size in range(0, max_extra + 1):
        for extra in itertools.combinations(candidates, size):
            examined += 1
            if examined > limit:
                break
            selection = mandatory | set(extra)
            if not is_valid_selection(graph, selection):
                continue
            time, n_kernels, n_sessions = _test_time_proxy(
                graph, selection, cap_width
            )
            area = sum(widths[name] for name in selection) * (
                BILBO_CELL_AREA - DFF_AREA
            )
            points.append(
                DesignPoint(
                    bilbo_registers=tuple(sorted(selection)),
                    n_registers=len(selection),
                    added_area=area,
                    maximal_delay=maximal_delay(graph, selection),
                    test_time_proxy=time,
                    n_kernels=n_kernels,
                    n_sessions=n_sessions,
                )
            )
        if examined > limit:
            break

    if not points:
        raise SelectionError("no valid design found in the explored space")
    return pareto_front(points)


def pareto_front(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """The non-dominated subset, deterministically ordered."""
    front = [
        p for p in points if not any(q.dominates(p) for q in points)
    ]
    unique = {p.bilbo_registers: p for p in front}
    return sorted(
        unique.values(),
        key=lambda p: (p.added_area, p.maximal_delay, p.test_time_proxy),
    )

"""Unified result surface for every coverage-producing run in the repo.

Fault simulation (:class:`FaultSimResult`, produced by ``repro.faultsim`` and
``repro.engine``) and BIST session simulation (:class:`SessionResult`,
produced by ``repro.bist.session``) answer the same question — which faults
did this test detect? — but historically exposed it through different
shapes.  This module is the common home:

* :class:`CoverageResult` is the shared protocol: ``coverage()``,
  ``detected``, ``undetected`` and ``to_json()`` behave the same on every
  result type, so experiment harnesses and the CLI can consume either.
* Both concrete result classes live here; ``repro.faultsim.simulator`` and
  ``repro.bist.session`` re-export them as thin deprecation shims, so
  pre-existing imports keep working.
* ``to_json()`` gives one serialization schema (used by the CLI's
  ``--json`` flag and the benchmark artifacts).

``SessionResult.coverage`` predates the protocol as a *property*; it now
returns a :class:`CoverageValue` — a ``float`` subclass that is also
callable — so both the old ``result.coverage`` and the protocol's
``result.coverage()`` spellings work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    runtime_checkable,
)

if TYPE_CHECKING:  # imported lazily to avoid a cycle with repro.faultsim
    from repro.faultsim.faults import Fault
    from repro.netlist.netlist import Netlist


@runtime_checkable
class CoverageResult(Protocol):
    """What every coverage-producing result exposes."""

    @property
    def detected(self) -> List[Fault]: ...

    @property
    def undetected(self) -> List[Fault]: ...

    def coverage(self) -> float: ...

    def to_json(self) -> Dict[str, Any]: ...


class CoverageValue(float):
    """A coverage fraction usable both as a float and as a call.

    Lets ``SessionResult.coverage`` honour its historical property contract
    (``result.coverage == 1.0``) while also satisfying the protocol's
    ``result.coverage()`` spelling.
    """

    def __call__(self, *args: Any, **kwargs: Any) -> float:
        return float(self)


def fault_to_json(fault: Fault) -> Dict[str, Any]:
    """One fault as a JSON-safe dict."""
    return {
        "net": fault.net,
        "stuck_at": fault.stuck_at,
        "gate_index": fault.gate_index,
        "pin": fault.pin,
    }


@dataclass
class FaultSimResult:
    """Outcome of a fault-simulation run.

    ``first_detection`` maps each detected fault to the 0-based index of the
    first pattern that detects it.  ``n_patterns`` is how many patterns were
    simulated in total.

    ``partial=True`` marks a run a :mod:`repro.guard` limit stopped early
    (deadline, pattern budget, memory ceiling, or cancellation); the
    structured ``stop_reason`` says which.  A partial result is internally
    consistent — coverage over the patterns actually applied — and a
    checkpointed run resumed later completes it bit-identically.
    """

    netlist: Netlist
    faults: List[Fault]
    first_detection: Dict[Fault, int] = field(default_factory=dict)
    n_patterns: int = 0
    undetectable: List[Fault] = field(default_factory=list)
    partial: bool = False
    stop_reason: Optional[str] = None

    @property
    def n_faults(self) -> int:
        return len(self.faults)

    @property
    def detected(self) -> List[Fault]:
        return list(self.first_detection)

    @property
    def undetected(self) -> List[Fault]:
        """Faults never detected, in fault-universe order.

        ``first_detection`` is consulted through a snapshot set so the cost
        is O(faults) however the mapping is represented — never a per-fault
        scan of the detected list.
        """
        detected = set(self.first_detection)
        return [f for f in self.faults if f not in detected]

    def coverage(self, after_patterns: Optional[int] = None, of_detectable: bool = False) -> float:
        """Fault coverage (fraction in [0,1]).

        With ``after_patterns`` given, counts only detections whose first
        pattern index is below it.  With ``of_detectable``, the denominator
        excludes faults proven undetectable (the paper reports coverage of
        detectable faults).
        """
        if after_patterns is None:
            hits = len(self.first_detection)
        else:
            hits = sum(1 for idx in self.first_detection.values() if idx < after_patterns)
        denom = len(self.faults)
        if of_detectable:
            denom -= len(self.undetectable)
        return hits / denom if denom else 1.0

    def detection_indices(self) -> List[int]:
        """Sorted first-detection pattern indices of all detected faults."""
        return sorted(self.first_detection.values())

    def patterns_for_coverage(self, target: float, of_detectable: bool = True) -> Optional[int]:
        """Fewest patterns reaching ``target`` coverage, or None if never.

        Returns the pattern *count* (index of the detecting pattern + 1).
        """
        denom = len(self.faults) - (len(self.undetectable) if of_detectable else 0)
        if denom <= 0:
            return 0
        needed = target * denom
        indices = self.detection_indices()
        # Smallest k with (#detections at index < k) >= needed.
        count = 0
        for position, index in enumerate(indices, start=1):
            count = position
            if count >= needed - 1e-9:
                return index + 1
        return None

    def merge_undetectable(self, faults: Iterable[Fault]) -> None:
        """Record faults proven redundant (e.g. by ATPG)."""
        known = set(self.undetectable)
        for fault in faults:
            if fault not in known:
                self.undetectable.append(fault)
                known.add(fault)

    def to_json(self, include_faults: bool = False) -> Dict[str, Any]:
        """Unified JSON shape (see :class:`CoverageResult`).

        ``include_faults`` adds the per-fault first-detection table, which
        can be large; the summary alone is enough for most artifacts.
        """
        payload: Dict[str, Any] = {
            "kind": "faultsim",
            "name": self.netlist.name,
            "n_faults": self.n_faults,
            "n_detected": len(self.first_detection),
            "n_undetected": self.n_faults - len(self.first_detection),
            "n_undetectable": len(self.undetectable),
            "n_patterns": self.n_patterns,
            "coverage": self.coverage(),
            "coverage_of_detectable": self.coverage(of_detectable=True),
            "partial": self.partial,
            "stop_reason": self.stop_reason,
        }
        if include_faults:
            payload["first_detection"] = [
                {**fault_to_json(fault), "pattern": index}
                for fault, index in self.first_detection.items()
            ]
            payload["undetected"] = [fault_to_json(f) for f in self.undetected]
        return payload


@dataclass
class SessionResult:
    """Outcome of one BIST session over a set of faults."""

    cycles: int
    golden_signatures: Dict[str, int]
    fault_signatures: Dict[Fault, Dict[str, int]]
    detected: List[Fault] = field(default_factory=list)
    undetected: List[Fault] = field(default_factory=list)
    partial: bool = False                #: stopped early by a guard limit
    stop_reason: Optional[str] = None    #: which limit (see repro.guard)

    @property
    def coverage(self) -> CoverageValue:
        total = len(self.detected) + len(self.undetected)
        return CoverageValue(len(self.detected) / total if total else 1.0)

    def to_json(self, include_faults: bool = False) -> Dict[str, Any]:
        """Unified JSON shape (see :class:`CoverageResult`)."""
        payload: Dict[str, Any] = {
            "kind": "session",
            "cycles": self.cycles,
            "n_faults": len(self.detected) + len(self.undetected),
            "n_detected": len(self.detected),
            "n_undetected": len(self.undetected),
            "coverage": float(self.coverage),
            "partial": self.partial,
            "stop_reason": self.stop_reason,
            "golden_signatures": {
                name: hex(signature)
                for name, signature in self.golden_signatures.items()
            },
        }
        if include_faults:
            payload["detected"] = [fault_to_json(f) for f in self.detected]
            payload["undetected"] = [fault_to_json(f) for f in self.undetected]
        return payload


__all__ = [
    "CoverageResult",
    "CoverageValue",
    "FaultSimResult",
    "SessionResult",
    "fault_to_json",
]

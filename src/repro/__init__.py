"""repro — a reproduction of the BIBS BIST methodology and its TPGs.

Lin, Gupta & Breuer, "A Low Cost BIST Methodology and Associated Novel Test
Pattern Generator", DATE 1994 (USC CENG TR 93-33).

Top-level convenience re-exports; see the subpackages for the full API:

* ``repro.netlist``   — gate-level netlists, builders, packed evaluation
* ``repro.faultsim``  — stuck-at faults, collapsing, bit-parallel simulation
* ``repro.engine``    — parallel fault-sim engine, golden-run cache, metrics
* ``repro.results``   — the unified ``CoverageResult`` surface
* ``repro.atpg``      — PODEM, for redundancy classification
* ``repro.rtl``       — RTL circuits (blocks / registers / nets)
* ``repro.graph``     — the Section-3.1 circuit graph model
* ``repro.analysis``  — balance, cones, k-step functional testability
* ``repro.bilbo``     — BILBO/CBILBO registers, MISR, cost models
* ``repro.core``      — BIBS, KA-85, BALLAST, scheduling, the BIST flow
* ``repro.tpg``       — LFSRs, SC_TPG, MC_TPG, pseudo-exhaustive testing
* ``repro.datapath``  — the Table-1 filter datapaths
* ``repro.library``   — the paper's figure circuits
* ``repro.experiments`` — per-table/per-figure reproduction harness
* ``repro.lint``      — static design-rule checks (netlist/structure/TPG/testability)
* ``repro.guard``     — run governance: deadlines, memory, cancellation
"""

from repro.analysis import classify, is_balanced
from repro.core import (
    compare_tdms,
    evaluate_design,
    make_bibs_testable,
    make_ka_testable,
)
from repro.engine import EngineResult, GoldenCache, simulate
from repro.faultsim import FaultSimulator, RandomPatternSource
from repro.graph import build_circuit_graph
from repro.guard import Budget, CancelToken, exit_code, signal_scope
from repro.lint import (
    Finding,
    LintError,
    LintReport,
    lint_circuit,
    lint_netlist,
    lint_structure,
    lint_testability,
    lint_tpg,
)
from repro.results import CoverageResult, FaultSimResult, SessionResult
from repro.rtl import RTLCircuit
from repro.tpg import KernelSpec, TPGDesign, mc_tpg, sc_tpg

__version__ = "1.0.0"

__all__ = [
    "RTLCircuit",
    "build_circuit_graph",
    "is_balanced",
    "classify",
    "make_bibs_testable",
    "make_ka_testable",
    "evaluate_design",
    "compare_tdms",
    "FaultSimulator",
    "RandomPatternSource",
    "simulate",
    "EngineResult",
    "GoldenCache",
    "Budget",
    "CancelToken",
    "signal_scope",
    "exit_code",
    "CoverageResult",
    "FaultSimResult",
    "SessionResult",
    "KernelSpec",
    "TPGDesign",
    "sc_tpg",
    "mc_tpg",
    "Finding",
    "LintError",
    "LintReport",
    "lint_circuit",
    "lint_netlist",
    "lint_structure",
    "lint_testability",
    "lint_tpg",
    "__version__",
]
